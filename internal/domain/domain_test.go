package domain

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// clustered builds a globally known body set and returns rank r's
// initial (badly distributed) share.
func clustered(n int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			sys.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		} else {
			// Dense clump: most of the work lives here.
			sys.Pos[i] = vec.V3{X: 0.1 + 0.02*rng.NormFloat64(), Y: 0.1 + 0.02*rng.NormFloat64(), Z: 0.1 + 0.02*rng.NormFloat64()}
		}
		sys.Mass[i] = 1
		sys.Work[i] = rng.Float64()*9 + 1 // wildly uneven work
		sys.ID[i] = int64(i)
	}
	return sys
}

func TestDecomposeBasics(t *testing.T) {
	const n = 1000
	global := clustered(n, 1)
	for _, np := range []int{1, 2, 3, 4, 8} {
		var mu sync.Mutex
		seenIDs := make(map[int64]int)
		workPerRank := make([]float64, np)
		var splits []uint64
		msg.Run(np, func(c *msg.Comm) {
			// Rank r starts with slice r (block distribution of the
			// unsorted global set).
			lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
			local := core.New(0)
			local.EnableDynamics()
			for i := lo; i < hi; i++ {
				local.AppendFrom(global, i)
			}
			d := GlobalDomain(c, local)
			res := Decompose(c, local, d)
			mu.Lock()
			defer mu.Unlock()
			splits = res.Splits
			w := 0.0
			for i := 0; i < res.Sys.Len(); i++ {
				seenIDs[res.Sys.ID[i]]++
				w += res.Sys.Work[i]
				// Contiguity: every local body within this rank's split.
				off := tree.KeyOffset(res.Sys.Key[i])
				if off < res.Splits[c.Rank()] || off >= res.Splits[c.Rank()+1] {
					t.Errorf("np=%d rank=%d: body offset %d outside [%d,%d)",
						np, c.Rank(), off, res.Splits[c.Rank()], res.Splits[c.Rank()+1])
				}
			}
			if !res.Sys.Sorted() {
				t.Errorf("np=%d rank=%d: result not sorted", np, c.Rank())
			}
			workPerRank[c.Rank()] = w
		})
		// No bodies lost or duplicated.
		if len(seenIDs) != n {
			t.Fatalf("np=%d: %d distinct ids, want %d", np, len(seenIDs), n)
		}
		for id, cnt := range seenIDs {
			if cnt != 1 {
				t.Fatalf("np=%d: id %d appears %d times", np, id, cnt)
			}
		}
		// Splits monotone.
		for r := 0; r < np; r++ {
			if splits[r] > splits[r+1] {
				t.Fatalf("np=%d: splits not monotone: %v", np, splits)
			}
		}
		// Work balance: with perfectly divisible work the max rank
		// holds at most mean + max single-body work; allow slack for
		// key-space granularity.
		if np > 1 {
			b := diag.BalanceOf(workPerRank)
			if b.Efficiency < 0.8 {
				t.Fatalf("np=%d: load balance efficiency %.3f (per-rank %v)", np, b.Efficiency, workPerRank)
			}
		}
	}
}

func TestDecomposePreservesFields(t *testing.T) {
	const n = 96
	global := clustered(n, 2)
	global.EnableVortex()
	global.EnableSPH()
	for i := 0; i < n; i++ {
		global.Vel[i] = vec.V3{X: float64(i)}
		global.Alpha[i] = vec.V3{Y: float64(i) * 2}
		global.H[i] = float64(i) + 0.5
		global.Rho[i] = float64(i) * 3
	}
	var mu sync.Mutex
	got := make(map[int64]Wire)
	msg.Run(4, func(c *msg.Comm) {
		lo, hi := c.Rank()*n/4, (c.Rank()+1)*n/4
		local := core.New(0)
		local.EnableDynamics()
		local.EnableVortex()
		local.EnableSPH()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		d := GlobalDomain(c, local)
		res := Decompose(c, local, d)
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < res.Sys.Len(); i++ {
			got[res.Sys.ID[i]] = Wire{
				Pos: res.Sys.Pos[i], Vel: res.Sys.Vel[i], Alpha: res.Sys.Alpha[i],
				Mass: res.Sys.Mass[i], Work: res.Sys.Work[i], H: res.Sys.H[i], Rho: res.Sys.Rho[i],
			}
		}
	})
	for i := 0; i < n; i++ {
		w, ok := got[int64(i)]
		if !ok {
			t.Fatalf("body %d lost", i)
		}
		if w.Vel != (vec.V3{X: float64(i)}) || w.Alpha != (vec.V3{Y: float64(i) * 2}) ||
			w.H != float64(i)+0.5 || w.Rho != float64(i)*3 || w.Pos != global.Pos[i] {
			t.Fatalf("body %d fields corrupted: %+v", i, w)
		}
	}
}

func TestDecomposeSingleRank(t *testing.T) {
	sys := clustered(50, 3)
	msg.Run(1, func(c *msg.Comm) {
		d := GlobalDomain(c, sys)
		res := Decompose(c, sys, d)
		if res.Sys.Len() != 50 {
			t.Errorf("lost bodies: %d", res.Sys.Len())
		}
		if res.Moved != 0 {
			t.Errorf("moved %d on single rank", res.Moved)
		}
		if res.Splits[0] != 0 || res.Splits[1] != tree.EndOffset {
			t.Errorf("splits = %v", res.Splits)
		}
	})
}

func TestDecomposeEmptyRankTolerated(t *testing.T) {
	// All work on one tiny clump: some ranks may end up empty; the
	// algorithm must not deadlock or lose bodies.
	const n = 8
	global := core.New(n)
	global.EnableDynamics()
	for i := 0; i < n; i++ {
		global.Pos[i] = vec.V3{X: 0.5, Y: 0.5, Z: 0.5} // identical keys
		global.Mass[i] = 1
	}
	var mu sync.Mutex
	total := 0
	msg.Run(4, func(c *msg.Comm) {
		lo, hi := c.Rank()*n/4, (c.Rank()+1)*n/4
		local := core.New(0)
		local.EnableDynamics()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		d := GlobalDomain(c, local)
		res := Decompose(c, local, d)
		mu.Lock()
		total += res.Sys.Len()
		mu.Unlock()
	})
	if total != n {
		t.Fatalf("bodies after decomposition: %d, want %d", total, n)
	}
}

func TestGlobalDomainConsistency(t *testing.T) {
	global := clustered(64, 4)
	domains := make([]vec.V3, 4)
	sizes := make([]float64, 4)
	msg.Run(4, func(c *msg.Comm) {
		lo, hi := c.Rank()*64/4, (c.Rank()+1)*64/4
		local := core.New(0)
		local.EnableDynamics()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		d := GlobalDomain(c, local)
		domains[c.Rank()] = d.Origin
		sizes[c.Rank()] = d.Size
	})
	for r := 1; r < 4; r++ {
		if domains[r] != domains[0] || sizes[r] != sizes[0] {
			t.Fatalf("rank %d domain differs: %v/%v vs %v/%v", r, domains[r], sizes[r], domains[0], sizes[0])
		}
	}
	// The domain must contain every body.
	for _, p := range global.Pos {
		f := p.Sub(domains[0])
		if f.X < 0 || f.Y < 0 || f.Z < 0 || f.X >= sizes[0] || f.Y >= sizes[0] || f.Z >= sizes[0] {
			t.Fatalf("body %v outside global domain", p)
		}
	}
}
