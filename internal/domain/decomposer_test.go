package domain

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/vec"
)

// rankSnap freezes one rank's post-decomposition state.
type rankSnap struct {
	ids  []int64
	ks   []keys.Key
	pos  []vec.V3
	work []float64
}

type stepSnap struct {
	splits []uint64
	ranks  []rankSnap
	stats  []Stats
}

// driftFn perturbs a local system before step's decomposition. It must
// depend only on body ID and step so every world moves bodies
// identically no matter which rank holds them.
type driftFn func(sys *core.System, step int)

// jitter drifts positions and work by a deterministic hash of (ID,
// step): small enough that the order is nearly preserved, large
// enough that some bodies change octants and ranks.
func jitter(scale float64) driftFn {
	return func(sys *core.System, step int) {
		for i := 0; i < sys.Len(); i++ {
			h := uint64(sys.ID[i])*2654435761 + uint64(step)*0x9e3779b9
			f := func(shift uint) float64 {
				return (float64((h>>shift)%1024)/1024 - 0.5) * scale
			}
			sys.Pos[i] = sys.Pos[i].Add(vec.V3{X: f(0), Y: f(10), Z: f(20)})
			sys.Work[i] = 1 + float64((h>>30)%100)/100
		}
	}
}

// runWorld runs `steps` decompositions over np ranks, each rank using
// the Decomposer mk returns (nil means the one-shot wrapper), and
// snapshots every step.
func runWorld(t *testing.T, global *core.System, np, steps int, drift driftFn, mk func() *Decomposer) []stepSnap {
	t.Helper()
	n := global.Len()
	snaps := make([]stepSnap, steps)
	for s := range snaps {
		snaps[s].ranks = make([]rankSnap, np)
		snaps[s].stats = make([]Stats, np)
	}
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		local := core.New(0)
		local.EnableDynamics()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		dec := mk()
		for s := 0; s < steps; s++ {
			if drift != nil {
				drift(local, s)
			}
			d := GlobalDomain(c, local)
			var res Result
			var st Stats
			if dec == nil {
				res = Decompose(c, local, d)
			} else {
				res = dec.Decompose(c, local, d)
				st = dec.Last
			}
			local = res.Sys
			mu.Lock()
			if c.Rank() == 0 {
				snaps[s].splits = append([]uint64(nil), res.Splits...)
			}
			snaps[s].ranks[c.Rank()] = rankSnap{
				ids:  append([]int64(nil), res.Sys.ID...),
				ks:   append([]keys.Key(nil), res.Sys.Key...),
				pos:  append([]vec.V3(nil), res.Sys.Pos...),
				work: append([]float64(nil), res.Sys.Work...),
			}
			snaps[s].stats[c.Rank()] = st
			mu.Unlock()
		}
	})
	return snaps
}

func snapsEqual(t *testing.T, label string, want, got []stepSnap) {
	t.Helper()
	for s := range want {
		if len(want[s].splits) != len(got[s].splits) {
			t.Fatalf("%s step %d: split count differs", label, s)
		}
		for i := range want[s].splits {
			if want[s].splits[i] != got[s].splits[i] {
				t.Fatalf("%s step %d: splits[%d] %d != %d", label, s, i, got[s].splits[i], want[s].splits[i])
			}
		}
		for r := range want[s].ranks {
			w, g := want[s].ranks[r], got[s].ranks[r]
			if len(w.ids) != len(g.ids) {
				t.Fatalf("%s step %d rank %d: %d bodies, want %d", label, s, r, len(g.ids), len(w.ids))
			}
			for i := range w.ids {
				if w.ids[i] != g.ids[i] || w.ks[i] != g.ks[i] || w.pos[i] != g.pos[i] || w.work[i] != g.work[i] {
					t.Fatalf("%s step %d rank %d body %d differs: id %d/%d key %v/%v",
						label, s, r, i, g.ids[i], w.ids[i], g.ks[i], w.ks[i])
				}
			}
		}
	}
}

// The incremental decomposer (warm bisection, resort repair, merged
// exchange) must produce byte-identical splits and body order to the
// historical cold path, step after step, under drift that moves
// bodies between ranks.
func TestDecomposerIncrementalMatchesCold(t *testing.T) {
	const n, steps = 1500, 4
	global := clustered(n, 7)
	for _, np := range []int{1, 2, 4, 8} {
		drift := jitter(2e-4)
		cold := runWorld(t, global, np, steps, drift, func() *Decomposer { return nil })
		inc := runWorld(t, global, np, steps, drift, func() *Decomposer { return &Decomposer{} })
		frozen := runWorld(t, global, np, steps, drift, func() *Decomposer { return &Decomposer{Cold: true} })
		snapsEqual(t, "incremental", cold, inc)
		snapsEqual(t, "cold-flag", cold, frozen)
		// Drift moved bodies across ranks at some step (otherwise the
		// test exercises nothing).
		if np > 1 {
			moved := false
			for s := 1; s < steps; s++ {
				for r := range inc[s].ranks {
					if len(inc[s].ranks[r].ids) != len(inc[s-1].ranks[r].ids) {
						moved = true
					}
					for i := range inc[s].ranks[r].ids {
						if i < len(inc[s-1].ranks[r].ids) && inc[s].ranks[r].ids[i] != inc[s-1].ranks[r].ids[i] {
							moved = true
						}
					}
				}
			}
			if !moved {
				t.Fatalf("np=%d: drift never changed any rank's bodies; test is vacuous", np)
			}
		}
	}
}

// With a static body set the previous splits stay exact, so every
// splitter must accept its warm bracket and the bisection must finish
// in fewer allreduce rounds than the cold 63; the pre-exchange repair
// must find nothing displaced.
func TestDecomposerWarmPathEngages(t *testing.T) {
	const n, steps = 1200, 3
	global := clustered(n, 9)
	for _, np := range []int{2, 4, 8} {
		snaps := runWorld(t, global, np, steps, nil, func() *Decomposer { return &Decomposer{} })
		coldRounds := snaps[0].stats[0].Rounds
		for r := 0; r < np; r++ {
			st0 := snaps[0].stats[r]
			if st0.WarmSplitters != 0 {
				t.Fatalf("np=%d rank=%d: first step used warm brackets", np, r)
			}
			for s := 1; s < steps; s++ {
				st := snaps[s].stats[r]
				if st.WarmSplitters != np-1 {
					t.Fatalf("np=%d rank=%d step=%d: %d/%d warm splitters", np, r, s, st.WarmSplitters, np-1)
				}
				if st.Rounds >= coldRounds {
					t.Fatalf("np=%d rank=%d step=%d: warm bisection took %d rounds, cold took %d",
						np, r, s, st.Rounds, coldRounds)
				}
				if st.FullSort || st.Displaced != 0 {
					t.Fatalf("np=%d rank=%d step=%d: static bodies reported displaced=%d fullSort=%v",
						np, r, s, st.Displaced, st.FullSort)
				}
			}
		}
	}
}

// The first call of a fresh Decomposer must fall back to a full sort
// (nothing is known about the order) and never use warm brackets.
func TestDecomposerColdStartStats(t *testing.T) {
	global := clustered(600, 11)
	snaps := runWorld(t, global, 4, 1, nil, func() *Decomposer { return &Decomposer{} })
	for r := 0; r < 4; r++ {
		st := snaps[0].stats[r]
		if st.WarmSplitters != 0 {
			t.Fatalf("rank %d: warm splitters on first call", r)
		}
		if st.MergeRuns < 1 {
			t.Fatalf("rank %d: merge saw %d runs", r, st.MergeRuns)
		}
	}
}

// Sub timer accumulates the sorting share under "treebuild/sort".
func TestDecomposerSubTimer(t *testing.T) {
	sys := clustered(300, 13)
	msg.Run(1, func(c *msg.Comm) {
		dec := &Decomposer{Sub: diag.NewTimer()}
		d := GlobalDomain(c, sys)
		dec.Decompose(c, sys, d)
		found := false
		for _, ph := range dec.Sub.Phases() {
			if ph == "treebuild/sort" {
				found = true
			}
		}
		if !found {
			t.Fatalf("Sub phases = %v, want treebuild/sort", dec.Sub.Phases())
		}
	})
}
