package domain

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/tree"
)

// The splits-reuse fast path of partial evaluations: when few bodies
// drifted out of order, a Reuse decomposer keeps the previous splits
// (one allreduce, no prefix sums, no bisection) while still exchanging
// strays -- so ownership stays exactly consistent with the splits.
// Heavy drift must fall back to the full bisection on every rank.
func TestDecomposerSplitsReuse(t *testing.T) {
	const n, np = 1200, 4
	global := clustered(n, 7)
	type step struct {
		splits []uint64
		stats  Stats
	}
	// One world, three decompositions per rank: cold-ish first pass,
	// tiny drift with Reuse on, violent drift with Reuse still on.
	steps := make([]step, 3)
	inBounds := true
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		dec := &Decomposer{Reuse: true}
		for s := 0; s < 3; s++ {
			switch s {
			case 1:
				jitter(2e-5)(local, s) // tiny: almost nobody changes order
			case 2:
				jitter(0.8)(local, s) // violent: most keys change
			}
			res := dec.Decompose(c, local, GlobalDomain(c, local))
			local = res.Sys
			ok := true
			for i := 0; i < local.Len(); i++ {
				off := tree.KeyOffset(local.Key[i])
				if off < res.Splits[c.Rank()] || off >= res.Splits[c.Rank()+1] {
					ok = false
				}
			}
			mu.Lock()
			if c.Rank() == 0 {
				steps[s] = step{splits: append([]uint64(nil), res.Splits...), stats: dec.Last}
			}
			if !ok {
				inBounds = false
			}
			mu.Unlock()
		}
	})
	if !inBounds {
		t.Fatal("a rank holds a body outside its split interval; reuse broke ownership")
	}
	if steps[0].stats.SplitsReused {
		t.Fatalf("first decomposition reused splits it never computed: %+v", steps[0].stats)
	}
	if !steps[1].stats.SplitsReused {
		t.Fatalf("tiny drift did not engage the reuse fast path: displaced fraction %g, stats %+v",
			steps[1].stats.DisplacedFrac, steps[1].stats)
	}
	if steps[1].stats.DisplacedFrac > DefaultReuseThreshold {
		t.Fatalf("reuse engaged above the threshold: %g > %g", steps[1].stats.DisplacedFrac, DefaultReuseThreshold)
	}
	for i := range steps[0].splits {
		if steps[1].splits[i] != steps[0].splits[i] {
			t.Fatalf("reused splits[%d] = %d differs from the previous %d", i, steps[1].splits[i], steps[0].splits[i])
		}
	}
	if steps[2].stats.SplitsReused {
		t.Fatalf("violent drift (displaced fraction %g) still reused splits", steps[2].stats.DisplacedFrac)
	}
	if steps[2].stats.DisplacedFrac <= DefaultReuseThreshold {
		t.Fatalf("violent drift displaced only %g of bodies; fallback path untested", steps[2].stats.DisplacedFrac)
	}
}

// Reused splits must be byte-identical across every rank's view: the
// reuse decision is a collective, so a world where ranks disagreed
// would deadlock or corrupt the exchange. This exercises the decision
// at several rank counts including one (where reuse is trivial).
func TestDecomposerReuseCollectiveAgreement(t *testing.T) {
	const n = 900
	global := clustered(n, 11)
	for _, np := range []int{1, 2, 8} {
		splits := make([][]uint64, np)
		reused := make([]bool, np)
		var mu sync.Mutex
		msg.Run(np, func(c *msg.Comm) {
			local := core.New(0)
			local.EnableDynamics()
			lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
			for i := lo; i < hi; i++ {
				local.AppendFrom(global, i)
			}
			dec := &Decomposer{Reuse: true}
			var res Result
			for s := 0; s < 2; s++ {
				if s == 1 {
					jitter(2e-5)(local, s)
				}
				res = dec.Decompose(c, local, GlobalDomain(c, local))
				local = res.Sys
			}
			mu.Lock()
			splits[c.Rank()] = append([]uint64(nil), res.Splits...)
			reused[c.Rank()] = dec.Last.SplitsReused
			mu.Unlock()
		})
		for r := 1; r < np; r++ {
			if reused[r] != reused[0] {
				t.Fatalf("np=%d: rank %d reuse decision %v disagrees with rank 0's %v", np, r, reused[r], reused[0])
			}
			for i := range splits[0] {
				if splits[r][i] != splits[0][i] {
					t.Fatalf("np=%d: rank %d splits[%d] = %d, rank 0 has %d", np, r, i, splits[r][i], splits[0][i])
				}
			}
		}
		if !reused[0] {
			t.Fatalf("np=%d: tiny drift did not engage reuse", np)
		}
	}
}
