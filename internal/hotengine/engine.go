// Package hotengine is the distributed hashed oct-tree pipeline with
// the physics factored out. The paper's central claim is that HOT is
// a library: "the same program structure" -- work-weighted domain
// decomposition, local tree build, branch allgather plus shared top
// tree, deferred-group traversal with context switching, and rounds
// of asynchronous batched messages -- serves gravity, vortex
// dynamics, SPH and panel methods alike. This package is that shared
// structure; a Physics implementation supplies what differs per
// application: an optional per-cell moment payload and its combine
// rule, the leaf body columns that travel in request replies, and any
// per-evaluation precomputation. The gravity engine
// (internal/parallel), the vortex engine (internal/vortex) and the
// distributed SPH driver (internal/sph) are thin instantiations.
//
// One evaluation runs in the paper's four phases:
//
//  1. Domain decomposition: bodies move to processors as contiguous,
//     work-weighted intervals of the Morton curve (internal/domain).
//  2. Distributed tree build: each processor builds a local hashed
//     oct-tree over its bodies, publishes its "branch" cells (the
//     coarsest cells wholly inside its interval), and all processors
//     assemble the identical shared top tree above the branches.
//  3. Tree traversal with latency hiding: each leaf group walks the
//     tree through Resolve, which checks the top tree, the local
//     tree, and an imported-cell table. A miss defers the group (the
//     paper's explicit context switch) and queues a batched request
//     to the cell's owner (internal/abm).
//  4. Rounds of batched request/reply run until every group finishes.
//
// The global key name space makes step 3 possible: any processor can
// compute which cells it needs and who owns them from key arithmetic
// plus the split table alone.
package hotengine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/abm"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/domain"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tree"
)

// Physics supplies the application-specific pieces of the pipeline.
// X is the per-cell moment payload beyond the geometric multipole
// every cell already carries (use None when the multipole suffices);
// B is the leaf body payload of a request reply (SoA columns, e.g.
// positions plus masses).
type Physics[X, B any] interface {
	// Prepare runs after decomposition, before the tree build, on the
	// redistributed, key-sorted local system (e.g. vortex dynamics
	// derives the structural masses from the strengths here).
	Prepare(sys *core.System)
	// PostBuild runs after the local tree build (e.g. prefix sums
	// over per-body quantities for O(1) per-cell sums).
	PostBuild(t *tree.Tree)
	// Extra returns the payload of a local cell (branch publication
	// and request serving).
	Extra(c *tree.Cell) X
	// CombineExtra folds a child's payload into an accumulating
	// parent payload (top-tree ancestor assembly; acc starts at the
	// zero X).
	CombineExtra(acc, child X) X
	// PackLeaf returns the body columns of a local leaf cell for a
	// request reply. The slices may alias the physics' own storage;
	// the importer copies.
	PackLeaf(c *tree.Cell) B
	// ImportLeaf copies n bodies from a reply payload into the
	// physics' import arena, returning the arena start index the
	// engine encodes into the cell's First sentinel.
	ImportLeaf(n int32, b B) int32
	// ResetImports discards the import arena (new exchange, or a
	// re-fetch pass over updated remote data).
	ResetImports()
}

// None is the empty per-cell payload, for physics whose cell moments
// are fully carried by the geometric multipole.
type None struct{}

// Config controls the shared pipeline.
type Config struct {
	// MAC sets the opening criterion used for the local tree build
	// and the top-tree ancestor RCrit values.
	MAC    grav.MACParams
	Bucket int
	// MaxRounds bounds the request/reply rounds per walk phase as a
	// deadlock backstop; 0 means the default (64).
	MaxRounds int
	// PhasePrefix prefixes the msg traffic phase labels (e.g. "v"
	// keeps the vortex engine's historical "vtreebuild"/"vwalk"
	// accounting separate from gravity's).
	PhasePrefix string
	// BuildWorkers caps the goroutines of the construction pipeline
	// (radix sort and fan-out tree build). 0 means automatic
	// (GOMAXPROCS, capped); 1 forces the serial paths. Results are
	// byte-identical for any value.
	BuildWorkers int
	// ColdStart disables the incremental decomposition shortcuts
	// (resort repair, warm-started splitter bisection), re-solving
	// from scratch every Exchange. Splits and body order are
	// byte-identical either way; this exists for ablations.
	ColdStart bool
}

// sentinelUnfetched marks a remote leaf whose bodies have not arrived.
const sentinelUnfetched = int32(-1 << 30)

// node is a cell plus its physics payload, the unit of the top and
// imported tables.
type node[X any] struct {
	Cell  tree.Cell
	Extra X
}

// Engine holds one rank's state across timesteps.
type Engine[X, B any] struct {
	C    *msg.Comm
	Cfg  Config
	Phys Physics[X, B]
	// Sys is this rank's current local bodies (replaced by each
	// Exchange with the redistributed, key-sorted system).
	Sys *core.System

	Domain keys.Domain
	Splits []uint64
	Local  *tree.Tree

	top      *htab.Table[node[X]]
	imported *htab.Table[node[X]]

	// Counters accumulates interaction counts across evaluations.
	Counters diag.Counters
	// Timer accumulates per-phase wall time across evaluations
	// (decompose, treebuild, branches, then one phase per walk).
	Timer *diag.Timer
	// Sub accumulates the tree-construction sub-breakdown across
	// evaluations: "treebuild/sort" (key sort and order repair, both
	// sides of the exchange), "treebuild/build" (partitioning and
	// subtree builds) and "treebuild/insert" (hash insertion and spine
	// assembly). Spans nest inside the Timer's decompose/treebuild
	// phases.
	Sub *diag.Timer
	// Rounds is the number of request/reply rounds since the last
	// Exchange; RemoteCells the cells imported.
	Rounds      int
	RemoteCells int

	// Trace, when non-nil, receives this rank's timeline: phase spans
	// (via the Timer's sink -- set both through EnableTrace), ABM
	// round spans, and a "stall" span per deferred group covering
	// first deferral to walk completion. Nil means zero overhead.
	Trace *trace.Tracer
	// Stalls, when non-nil, receives one latency sample per deferred
	// group: nanoseconds from the group's first deferral until its
	// walk finally completes -- the paper's context-switch wait made
	// measurable. Shared across ranks safely (atomic updates).
	Stalls *metrics.Histogram

	// dec and builder carry the construction pipeline's cross-step
	// state: sorter scratch, previous splits (warm bisection), cell
	// buffers.
	dec     domain.Decomposer
	builder tree.Builder

	cellBytes int
}

// New creates an engine wrapping this rank's share of the bodies. The
// physics-facing system configuration (EnableDynamics etc.) is the
// caller's responsibility.
func New[X, B any](c *msg.Comm, sys *core.System, phys Physics[X, B], cfg Config) *Engine[X, B] {
	if cfg.Bucket <= 0 {
		cfg.Bucket = tree.DefaultBucketSize
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	e := &Engine[X, B]{
		C: c, Cfg: cfg, Phys: phys, Sys: sys,
		Timer:     diag.NewTimer(),
		Sub:       diag.NewTimer(),
		cellBytes: CellWireBytes[X, B](),
	}
	e.dec.Workers = cfg.BuildWorkers
	e.dec.Cold = cfg.ColdStart
	e.dec.Sub = e.Sub
	e.builder.Workers = cfg.BuildWorkers
	e.builder.Sub = e.Sub
	return e
}

// CellBytes returns the derived fixed wire size of one cell record.
func (e *Engine[X, B]) CellBytes() int { return e.cellBytes }

// DecomposeStats describes the engine's most recent decomposition
// (displaced bodies, bisection rounds, splits-reuse fast path).
func (e *Engine[X, B]) DecomposeStats() domain.Stats { return e.dec.Last }

// EnableTrace attaches a per-rank tracer: the Timer's phases become
// timeline spans and the walk emits ABM round and stall spans. Call
// before the first Exchange.
func (e *Engine[X, B]) EnableTrace(t *trace.Tracer) {
	e.Trace = t
	e.Timer.Sink = func(phase string, start time.Time, d time.Duration) {
		t.SpanAt(phase, start, d)
	}
	e.Sub.Sink = e.Timer.Sink
}

// Report packages this rank's accumulated diagnostics as a RunReport
// rank input (internal/metrics).
func (e *Engine[X, B]) Report() metrics.RankInput {
	return metrics.RankInput{
		Counters:    e.Counters,
		Timer:       e.Timer,
		Sub:         e.Sub,
		Rounds:      e.Rounds,
		RemoteCells: e.RemoteCells,
	}
}

// TelemetrySample packages this rank's cumulative pipeline state for
// the live sampler: everything here is either owned by the rank
// goroutine (counters, timers, traffic record) or copied, so the call
// is safe mid-run where Report (which shares Timer pointers) is not.
// stepNs is the rank's wall-clock for the step just finished. The
// physics engines wrap this with their invariants (energy, stepping).
func (e *Engine[X, B]) TelemetrySample(stepNs int64) telemetry.RankSample {
	phases := e.Timer.SnapshotSeconds()
	for ph, s := range e.Sub.SnapshotSeconds() {
		phases[ph] = s
	}
	return telemetry.RankSample{
		Counters:    e.Counters,
		StepNs:      stepNs,
		Phases:      phases,
		Rounds:      e.Rounds,
		RemoteCells: e.RemoteCells,
		Sent:        e.C.TrafficTotal(),
		Bodies:      e.Sys.Len(),
	}
}

// Exchange runs phases 1 and 2: decomposition, local tree build, and
// the branch exchange that assembles the shared top tree. On return
// Sys holds the redistributed local bodies and the engine is ready
// for WalkGroups.
func (e *Engine[X, B]) Exchange() {
	e.exchange(false)
}

// ExchangeIncremental is Exchange's fast path for the partial force
// evaluations between block-timestep synchronization points: the key
// domain is reused from the last full Exchange (keys.Domain.KeyOf
// clamps, so bodies that drifted outside the stale box quantize to its
// faces) and the decomposer may keep the previous splits when few
// bodies moved (domain.Decomposer.Reuse), skipping the splitter
// bisection and its allreduce rounds. Ownership stays exact -- strays
// are still exchanged -- only the load balance and the domain box go
// slightly stale until the next full Exchange. Must follow at least
// one full Exchange.
func (e *Engine[X, B]) ExchangeIncremental() {
	e.exchange(true)
}

func (e *Engine[X, B]) exchange(incremental bool) {
	e.Timer.Start("decompose")
	if !incremental {
		e.Domain = domain.GlobalDomain(e.C, e.Sys)
	}
	e.dec.Reuse = incremental && !e.Cfg.ColdStart
	res := e.dec.Decompose(e.C, e.Sys, e.Domain)
	e.Sys = res.Sys
	e.Splits = res.Splits
	e.Phys.Prepare(e.Sys)

	// The local tree force-splits cells straddling this rank's
	// interval so every branch cell materializes as a node.
	e.Timer.Start("treebuild")
	e.C.Phase(e.Cfg.PhasePrefix + "treebuild")
	e.Local = e.builder.BuildRange(e.Sys, e.Domain, e.Cfg.MAC, e.Cfg.Bucket,
		e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1])
	e.Counters.CellsBuilt += uint64(e.Local.NCells())
	e.Phys.PostBuild(e.Local)

	e.Timer.Start("branches")
	e.exchangeBranches()
	e.Timer.Stop()
	e.Rounds = 0
}

// exchangeBranches publishes this rank's branch cells and assembles
// the shared top tree (branches plus all their ancestors, moments
// combined across ranks).
func (e *Engine[X, B]) exchangeBranches() {
	e.C.Phase(e.Cfg.PhasePrefix + "branches")
	var mine []Wire[X, B]
	for _, bk := range tree.RangeDecompose(e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1]) {
		c := e.Local.Cell(bk)
		if c == nil {
			continue // no bodies in this part of the interval
		}
		mine = append(mine, Wire[X, B]{
			Key: bk, Mp: c.Mp, Extra: e.Phys.Extra(c), RCrit: c.RCrit,
			N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
		})
	}
	all := msg.Allgather(e.C, mine, e.cellBytes*len(mine))

	e.top = htab.New[node[X]](256)
	e.imported = htab.New[node[X]](1024)
	e.Phys.ResetImports()
	e.RemoteCells = 0

	// Insert branches. Own branches keep their local body ranges so
	// the walker can use them directly; remote leaf branches are
	// marked unfetched.
	var branchKeys []keys.Key
	for r, batch := range all {
		for _, w := range batch {
			c := tree.Cell{
				Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
				ChildMask: w.ChildMask, Leaf: w.Leaf,
			}
			if r == e.C.Rank() {
				c.First = e.Local.Cell(w.Key).First
			} else if w.Leaf {
				c.First = sentinelUnfetched
			}
			e.top.Insert(w.Key, node[X]{Cell: c, Extra: w.Extra})
			branchKeys = append(branchKeys, w.Key)
		}
	}

	// Build ancestors, deepest level first so children always exist
	// when their parent's moments are combined.
	anc := map[keys.Key]bool{}
	for _, bk := range branchKeys {
		for k := bk.Parent(); k != keys.Invalid; k = k.Parent() {
			if anc[k] {
				break // all higher ancestors already recorded
			}
			anc[k] = true
		}
	}
	order := make([]keys.Key, 0, len(anc))
	for k := range anc {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Level() > order[j].Level() })
	for _, k := range order {
		var children []grav.Multipole
		var mask uint8
		var nb int32
		var extra X
		for oct := 0; oct < 8; oct++ {
			if cc := e.top.Ptr(k.Child(oct)); cc != nil {
				children = append(children, cc.Cell.Mp)
				mask |= 1 << uint(oct)
				nb += cc.Cell.N
				extra = e.Phys.CombineExtra(extra, cc.Extra)
			}
		}
		mp := grav.Combine(children)
		center, size := e.Domain.CellCenter(k)
		e.top.Insert(k, node[X]{
			Cell: tree.Cell{
				Key: k, Mp: mp,
				RCrit:     grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), e.Cfg.MAC),
				N:         nb,
				ChildMask: mask,
			},
			Extra: extra,
		})
	}
	if len(branchKeys) > 0 && e.top.Ptr(keys.Root) == nil {
		// Exactly one branch and it is the root itself (single rank
		// holding everything): nothing to do. Otherwise the root must
		// exist.
		if len(branchKeys) != 1 || branchKeys[0] != keys.Root {
			panic("hotengine: top tree has no root")
		}
	}
}

// OwnerOf returns the rank owning a (strictly below-branch) cell,
// from key arithmetic and the split table alone.
func (e *Engine[X, B]) OwnerOf(k keys.Key) int {
	off := tree.KeyOffset(k.MinBody())
	// Find r with Splits[r] <= off < Splits[r+1].
	r := sort.Search(len(e.Splits)-1, func(i int) bool { return e.Splits[i+1] > off })
	if r >= e.C.Size() {
		r = e.C.Size() - 1
	}
	return r
}

// Resolve finds a cell and its physics payload, or reports it
// missing. Lookup order: top tree (authoritative above and at the
// branches, except unfetched remote leaves, which fall through to the
// imports), then the local tree for cells this rank owns, then the
// imported cells. The returned pointers are valid until the next
// import round.
func (e *Engine[X, B]) Resolve(k keys.Key) (*tree.Cell, *X, bool) {
	if n := e.top.Ptr(k); n != nil {
		if n.Cell.Leaf && n.Cell.First == sentinelUnfetched {
			if in := e.imported.Ptr(k); in != nil {
				return &in.Cell, &in.Extra, true
			}
			return nil, nil, false // bodies must be fetched
		}
		return &n.Cell, &n.Extra, true
	}
	if e.OwnerOf(k) == e.C.Rank() {
		if c := e.Local.Cell(k); c != nil {
			x := e.Phys.Extra(c)
			return c, &x, true
		}
		return nil, nil, false
	}
	if in := e.imported.Ptr(k); in != nil {
		return &in.Cell, &in.Extra, true
	}
	return nil, nil, false
}

// serve answers a batch of cell requests from src out of the local
// tree. Every requested key must be at or below one of this rank's
// branches, so a miss is a protocol violation.
func (e *Engine[X, B]) serve(src int, reqs []keys.Key) []Wire[X, B] {
	out := make([]Wire[X, B], len(reqs))
	for i, k := range reqs {
		c := e.Local.Cell(k)
		if c == nil {
			panic(fmt.Sprintf("hotengine: rank %d asked rank %d for unknown cell %v", src, e.C.Rank(), k))
		}
		w := Wire[X, B]{
			Key: k, Mp: c.Mp, Extra: e.Phys.Extra(c), RCrit: c.RCrit,
			N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
		}
		if c.Leaf {
			w.Bodies = e.Phys.PackLeaf(c)
		}
		out[i] = w
	}
	return out
}

// importCell stores a fetched remote cell, copying leaf bodies into
// the physics' import arena.
func (e *Engine[X, B]) importCell(w Wire[X, B]) {
	c := tree.Cell{
		Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
		ChildMask: w.ChildMask, Leaf: w.Leaf,
	}
	if w.Leaf {
		start := e.Phys.ImportLeaf(w.N, w.Bodies)
		c.First = -(start + 1)
	}
	e.imported.Insert(w.Key, node[X]{Cell: c, Extra: w.Extra})
	e.RemoteCells++
}

// ResetImports discards every imported cell and the physics' arena,
// so a later WalkGroups re-fetches remote data. Multi-pass physics
// (SPH) uses this between the density and force passes: the second
// pass must see the updated remote densities, not the stale imports.
func (e *Engine[X, B]) ResetImports() {
	e.imported = htab.New[node[X]](1024)
	e.Phys.ResetImports()
}

// WalkGroups runs phases 3 and 4 for one traversal pass: it invokes
// walk for every local leaf group, deferring groups whose walk
// returns missing keys and fetching those cells from their owners in
// batched rounds until every group completes. walk receives the
// group's key and cell plus the counter snapshot taken just before
// the attempt (for per-body work accounting); on a miss the engine
// restores the counters to that snapshot, so a discarded partial walk
// never inflates the traversal counts -- the paper's performance
// accounting rides on these counters being exact. label names the
// phase for the Timer and (with the configured prefix) the msg
// traffic accounting.
func (e *Engine[X, B]) WalkGroups(label string, walk func(gk keys.Key, g *tree.Cell, snapshot diag.Counters) []keys.Key) {
	e.walkGroups(label, nil, walk)
}

// WalkGroupsIf is WalkGroups restricted to the groups for which
// active returns true -- the partial traversal of block timesteps.
// Skipped groups run no walk at all, but every rank still enters the
// same collective rounds (request serving is symmetric), so the call
// is collective even when a rank's active set is empty.
func (e *Engine[X, B]) WalkGroupsIf(label string, active func(g *tree.Cell) bool, walk func(gk keys.Key, g *tree.Cell, snapshot diag.Counters) []keys.Key) {
	e.walkGroups(label, active, walk)
}

func (e *Engine[X, B]) walkGroups(label string, active func(g *tree.Cell) bool, walk func(gk keys.Key, g *tree.Cell, snapshot diag.Counters) []keys.Key) {
	e.Timer.Start(label)
	e.C.Phase(e.Cfg.PhasePrefix + label)
	eng := abm.New(e.C, KeyWireBytes(), e.cellBytes, e.serve)
	eng.Trace = e.Trace

	deferred := make([]keys.Key, 0, len(e.Local.Groups))
	for _, gk := range e.Local.Groups {
		if active == nil || active(e.Local.Cell(gk)) {
			deferred = append(deferred, gk)
		}
	}
	pending := map[keys.Key]bool{}

	// Stall observation (off unless tracing or the histogram is
	// attached): a group's stall runs from its first deferral to the
	// walk that finally completes it, spanning however many rounds
	// that takes.
	observeStalls := e.Stalls != nil || e.Trace != nil
	var deferredAt map[keys.Key]time.Time
	if observeStalls {
		deferredAt = make(map[keys.Key]time.Time)
	}

	for round := 0; ; round++ {
		if round > e.Cfg.MaxRounds {
			// One rank declaring the protocol stuck must not strand
			// the others inside the next collective: abort the whole
			// world so every rank unwinds with its round state (noted
			// by abm.Round) attached to the WorldError.
			e.C.Abort(fmt.Errorf(
				"hotengine: request rounds exceeded MaxRounds=%d in phase %q: %d groups deferred, %d cells pending, %d rounds since exchange",
				e.Cfg.MaxRounds, label, len(deferred), len(pending), e.Rounds))
		}
		var still []keys.Key
		for _, gk := range deferred {
			g := e.Local.Cell(gk)
			snapshot := e.Counters
			missing := walk(gk, g, snapshot)
			if missing == nil {
				if observeStalls {
					if t0, ok := deferredAt[gk]; ok {
						d := time.Since(t0)
						e.Stalls.Observe(uint64(d.Nanoseconds()))
						e.Trace.SpanAt("stall", t0, d)
						delete(deferredAt, gk)
					}
				}
				continue
			}
			// Context switch: restore the counters, defer the group,
			// batch its requests.
			e.Counters = snapshot
			e.Counters.Deferred++
			if observeStalls {
				if _, ok := deferredAt[gk]; !ok {
					deferredAt[gk] = time.Now()
				}
			}
			still = append(still, gk)
			for _, mk := range missing {
				if !pending[mk] {
					pending[mk] = true
					e.Counters.Requests++
					eng.Post(e.OwnerOf(mk), mk)
				}
			}
		}
		deferred = still
		if !eng.AnyPendingGlobal(len(deferred) > 0) {
			break
		}
		replies := eng.Round()
		e.Rounds++
		for _, batch := range replies {
			for _, w := range batch {
				e.importCell(w)
			}
		}
	}
	e.Timer.Stop()
}
