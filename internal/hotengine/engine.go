// Package hotengine is the distributed hashed oct-tree pipeline with
// the physics factored out. The paper's central claim is that HOT is
// a library: "the same program structure" -- work-weighted domain
// decomposition, local tree build, branch allgather plus shared top
// tree, deferred-group traversal with context switching, and rounds
// of asynchronous batched messages -- serves gravity, vortex
// dynamics, SPH and panel methods alike. This package is that shared
// structure; a Physics implementation supplies what differs per
// application: an optional per-cell moment payload and its combine
// rule, the leaf body columns that travel in request replies, and any
// per-evaluation precomputation. The gravity engine
// (internal/parallel), the vortex engine (internal/vortex) and the
// distributed SPH driver (internal/sph) are thin instantiations.
//
// One evaluation runs in the paper's four phases:
//
//  1. Domain decomposition: bodies move to processors as contiguous,
//     work-weighted intervals of the Morton curve (internal/domain).
//  2. Distributed tree build: each processor builds a local hashed
//     oct-tree over its bodies, publishes its "branch" cells (the
//     coarsest cells wholly inside its interval), and all processors
//     assemble the identical shared top tree above the branches.
//  3. Tree traversal with latency hiding: each leaf group walks the
//     tree through Resolve, which checks the top tree, the local
//     tree, and an imported-cell table. A miss defers the group (the
//     paper's explicit context switch) and queues a batched request
//     to the cell's owner (internal/abm).
//  4. Rounds of batched request/reply run until every group finishes.
//
// The global key name space makes step 3 possible: any processor can
// compute which cells it needs and who owns them from key arithmetic
// plus the split table alone.
package hotengine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/abm"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/domain"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tree"
)

// Physics supplies the application-specific pieces of the pipeline.
// X is the per-cell moment payload beyond the geometric multipole
// every cell already carries (use None when the multipole suffices);
// B is the leaf body payload of a request reply (SoA columns, e.g.
// positions plus masses).
type Physics[X, B any] interface {
	// Prepare runs after decomposition, before the tree build, on the
	// redistributed, key-sorted local system (e.g. vortex dynamics
	// derives the structural masses from the strengths here).
	Prepare(sys *core.System)
	// PostBuild runs after the local tree build (e.g. prefix sums
	// over per-body quantities for O(1) per-cell sums).
	PostBuild(t *tree.Tree)
	// Extra returns the payload of a local cell (branch publication
	// and request serving).
	Extra(c *tree.Cell) X
	// CombineExtra folds a child's payload into an accumulating
	// parent payload (top-tree ancestor assembly; acc starts at the
	// zero X).
	CombineExtra(acc, child X) X
	// PackLeaf returns the body columns of a local leaf cell for a
	// request reply. The slices may alias the physics' own storage;
	// the importer copies.
	PackLeaf(c *tree.Cell) B
	// ImportLeaf copies n bodies from a reply payload into the
	// physics' import arena, returning the arena start index the
	// engine encodes into the cell's First sentinel.
	ImportLeaf(n int32, b B) int32
	// ResetImports discards the import arena (new exchange, or a
	// re-fetch pass over updated remote data).
	ResetImports()
}

// None is the empty per-cell payload, for physics whose cell moments
// are fully carried by the geometric multipole.
type None struct{}

// Config controls the shared pipeline.
type Config struct {
	// MAC sets the opening criterion used for the local tree build
	// and the top-tree ancestor RCrit values.
	MAC    grav.MACParams
	Bucket int
	// MaxRounds bounds the request/reply rounds per walk phase as a
	// deadlock backstop; 0 means the default (64).
	MaxRounds int
	// PhasePrefix prefixes the msg traffic phase labels (e.g. "v"
	// keeps the vortex engine's historical "vtreebuild"/"vwalk"
	// accounting separate from gravity's).
	PhasePrefix string
	// BuildWorkers caps the goroutines of the construction pipeline
	// (radix sort and fan-out tree build). 0 means automatic
	// (GOMAXPROCS, capped); 1 forces the serial paths. Results are
	// byte-identical for any value.
	BuildWorkers int
	// ColdStart disables the incremental decomposition shortcuts
	// (resort repair, warm-started splitter bisection), re-solving
	// from scratch every Exchange. Splits and body order are
	// byte-identical either way; this exists for ablations.
	ColdStart bool
	// EvalWorkers turns on the walk/eval pipeline: completed groups
	// are evaluated by this many worker goroutines while the rank
	// goroutine keeps walking and running the batched-message rounds,
	// so kernels overlap the collectives. 0 (the default) evaluates
	// inline on the rank goroutine, exactly the historical schedule.
	// Forces and counters are bitwise identical either way.
	EvalWorkers int
	// EvalSlots is the pipeline depth: how many completed groups may
	// be queued or running at once (each slot pins one adapter-side
	// evaluation state -- walker, interaction list). The backlog is
	// what the workers drain while the rank goroutine sits in a
	// collective, so depth, not worker count, bounds how much kernel
	// time can hide under communication. 0 means 64 per worker.
	EvalSlots int
	// PrefetchDepth makes serve piggyback the subtree below each
	// requested cell (children, depth levels deep) in the same reply
	// batch: the speculation that a rank opening a cell will shortly
	// open its children, cutting request rounds per walk phase. 0
	// disables. Replies are deduped against already-imported cells on
	// the requester; forces are identical at any depth.
	PrefetchDepth int
}

// sentinelUnfetched marks a remote leaf whose bodies have not arrived.
const sentinelUnfetched = int32(-1 << 30)

// node is a cell plus its physics payload, the unit of the top and
// imported tables.
type node[X any] struct {
	Cell  tree.Cell
	Extra X
	// Prefetched marks a speculatively imported cell that no walk has
	// resolved yet; Resolve clears it and counts the hit. Only the
	// rank goroutine touches imported nodes.
	Prefetched bool
}

// walkPhase is the persistent per-phase-label state: the abm engine
// (recycled queue/receive buffers) and the precomputed traffic label
// (prefix concatenation allocates, so it is done once).
type walkPhase[X, B any] struct {
	eng   *abm.Engine[keys.Key, Reply[X, B]]
	label string
}

// Engine holds one rank's state across timesteps.
type Engine[X, B any] struct {
	C    *msg.Comm
	Cfg  Config
	Phys Physics[X, B]
	// Sys is this rank's current local bodies (replaced by each
	// Exchange with the redistributed, key-sorted system).
	Sys *core.System

	Domain keys.Domain
	Splits []uint64
	Local  *tree.Tree

	top      *htab.Table[node[X]]
	imported *htab.Table[node[X]]

	// Counters accumulates interaction counts across evaluations.
	Counters diag.Counters
	// Timer accumulates per-phase wall time across evaluations
	// (decompose, treebuild, branches, then one phase per walk).
	Timer *diag.Timer
	// Sub accumulates the tree-construction sub-breakdown across
	// evaluations: "treebuild/sort" (key sort and order repair, both
	// sides of the exchange), "treebuild/build" (partitioning and
	// subtree builds) and "treebuild/insert" (hash insertion and spine
	// assembly). Spans nest inside the Timer's decompose/treebuild
	// phases.
	Sub *diag.Timer
	// Rounds is the number of request/reply rounds since the last
	// Exchange; RemoteCells the cells imported.
	Rounds      int
	RemoteCells int

	// Trace, when non-nil, receives this rank's timeline: phase spans
	// (via the Timer's sink -- set both through EnableTrace), ABM
	// round spans, and a "stall" span per deferred group covering
	// first deferral to walk completion. Nil means zero overhead.
	Trace *trace.Tracer
	// Stalls, when non-nil, receives one latency sample per deferred
	// group: nanoseconds from the group's first deferral until its
	// walk finally completes -- the paper's context-switch wait made
	// measurable. Shared across ranks safely (atomic updates).
	Stalls *metrics.Histogram

	// dec and builder carry the construction pipeline's cross-step
	// state: sorter scratch, previous splits (warm bisection), cell
	// buffers.
	dec     domain.Decomposer
	builder tree.Builder

	cellBytes int

	// phases holds one persistent abm engine per walk-phase label, so
	// steady-state walks reuse the recycled queue/receive buffers
	// instead of reconstructing the engine every call.
	phases map[string]*walkPhase[X, B]
	// pool is the eval pipeline (nil when EvalWorkers is 0);
	// progress is e.progressOne bound once, installed as the Comm's
	// Progress hook for the duration of a pipelined walk phase so
	// blocking collective receives drain the deferred work backlog.
	pool     *evalPool
	progress func() bool
	// Per-phase pipeline state shared between the round loop, the
	// Progress hook and the incremental reply imports (all
	// rank-goroutine-only): the current walk/eval closures and pool;
	// the queue of not-yet-walked groups (freshBuf[freshIdx:]); the
	// queue of deferred groups whose last missing cell has arrived
	// (readyBuf[readyIdx:], retry candidates); per-group unresolved
	// key counts and the reverse key->waiting-groups index that
	// importCell decrements so a group is promoted to ready the
	// moment its final cell lands; and missing cell keys discovered
	// since the last flush (missBuf -- posting to the abm engine must
	// wait until the rank is outside a collective). waiterPool
	// recycles the keyWaiters value slices across keys and phases.
	curWalk    WalkFn
	curEval    EvalFn
	curPool    *evalPool
	freshBuf   []keys.Key
	freshIdx   int
	readyBuf   []keys.Key
	readyIdx   int
	waitCount  map[keys.Key]int
	keyWaiters map[keys.Key][]keys.Key
	waiterPool [][]keys.Key
	missBuf    []keys.Key
	onReply    func(src int, reps []Reply[X, B])
	observe    bool
	// Persistent walkGroups scratch, cleared on entry: the pending
	// request-dedup set, the stall start times, and the two deferral
	// list buffers swapped each round.
	pending    map[keys.Key]bool
	deferredAt map[keys.Key]time.Time
	// Overlap accounting (cumulative across the run, like Counters):
	// wall time the rank goroutine spent inside the walk collectives,
	// and how much eval-worker busy time landed inside those windows
	// (clamped to workers x window; whole-job granularity).
	commNs           int64
	evalDuringCommNs int64
}

// New creates an engine wrapping this rank's share of the bodies. The
// physics-facing system configuration (EnableDynamics etc.) is the
// caller's responsibility.
func New[X, B any](c *msg.Comm, sys *core.System, phys Physics[X, B], cfg Config) *Engine[X, B] {
	if cfg.Bucket <= 0 {
		cfg.Bucket = tree.DefaultBucketSize
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	e := &Engine[X, B]{
		C: c, Cfg: cfg, Phys: phys, Sys: sys,
		Timer:     diag.NewTimer(),
		Sub:       diag.NewTimer(),
		cellBytes: CellWireBytes[X, B](),
		phases:    make(map[string]*walkPhase[X, B]),
	}
	e.dec.Workers = cfg.BuildWorkers
	e.dec.Cold = cfg.ColdStart
	e.dec.Sub = e.Sub
	e.builder.Workers = cfg.BuildWorkers
	e.builder.Sub = e.Sub
	e.progress = e.progressOne
	e.onReply = e.onReplyBatch
	e.Cfg.EvalWorkers = 0 // set by ConfigureOverlap so the pool exists
	e.ConfigureOverlap(cfg.EvalWorkers, cfg.PrefetchDepth)
	return e
}

// ConfigureOverlap (re)configures the latency-hiding knobs after
// construction: the eval pipeline's worker count and the serve-side
// prefetch depth. Call between evaluations only. workers 0 tears the
// pool down (inline evaluation).
func (e *Engine[X, B]) ConfigureOverlap(workers, prefetchDepth int) {
	e.Cfg.PrefetchDepth = prefetchDepth
	if workers == e.Cfg.EvalWorkers && (e.pool != nil) == (workers > 0) {
		return
	}
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
	e.Cfg.EvalWorkers = workers
	if workers > 0 {
		slots := e.Cfg.EvalSlots
		if slots <= 0 {
			slots = workers * 64
		}
		e.pool = newEvalPool(workers, slots)
	}
}

// Slots returns how many evaluation states the walk pipeline can hold
// in flight; adapters size their per-slot walkers/lists to this and
// index them by the slot argument of WalkFn/EvalFn. 1 when the
// pipeline is off (only the inline slot 0 exists).
func (e *Engine[X, B]) Slots() int {
	if e.pool == nil {
		return 1
	}
	return e.pool.nslots + 1
}

// Close stops the eval workers, if any. The engine must not walk
// afterwards.
func (e *Engine[X, B]) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// CellBytes returns the derived fixed wire size of one cell record.
func (e *Engine[X, B]) CellBytes() int { return e.cellBytes }

// DecomposeStats describes the engine's most recent decomposition
// (displaced bodies, bisection rounds, splits-reuse fast path).
func (e *Engine[X, B]) DecomposeStats() domain.Stats { return e.dec.Last }

// EnableTrace attaches a per-rank tracer: the Timer's phases become
// timeline spans and the walk emits ABM round and stall spans. Call
// before the first Exchange.
func (e *Engine[X, B]) EnableTrace(t *trace.Tracer) {
	e.Trace = t
	e.Timer.Sink = func(phase string, start time.Time, d time.Duration) {
		t.SpanAt(phase, start, d)
	}
	e.Sub.Sink = e.Timer.Sink
}

// Report packages this rank's accumulated diagnostics as a RunReport
// rank input (internal/metrics).
func (e *Engine[X, B]) Report() metrics.RankInput {
	in := metrics.RankInput{
		Counters:    e.Counters,
		Timer:       e.Timer,
		Sub:         e.Sub,
		Rounds:      e.Rounds,
		RemoteCells: e.RemoteCells,
	}
	if e.Cfg.EvalWorkers > 0 || e.Cfg.PrefetchDepth > 0 {
		in.Overlap = &metrics.OverlapStats{
			EvalWorkers:           e.Cfg.EvalWorkers,
			PrefetchDepth:         e.Cfg.PrefetchDepth,
			CommSeconds:           float64(e.commNs) / 1e9,
			EvalBusySeconds:       float64(e.evalBusyNs()) / 1e9,
			EvalDuringCommSeconds: float64(e.evalDuringCommNs) / 1e9,
			Rounds:                e.Rounds,
			Prefetched:            e.Counters.Prefetched,
			PrefetchUsed:          e.Counters.PrefetchUsed,
		}
	}
	return in
}

// evalBusyNs is the cumulative worker time spent inside EvalFn.
func (e *Engine[X, B]) evalBusyNs() int64 {
	if e.pool == nil {
		return 0
	}
	return e.pool.busyNs.Load()
}

// TelemetrySample packages this rank's cumulative pipeline state for
// the live sampler: everything here is either owned by the rank
// goroutine (counters, timers, traffic record) or copied, so the call
// is safe mid-run where Report (which shares Timer pointers) is not.
// stepNs is the rank's wall-clock for the step just finished. The
// physics engines wrap this with their invariants (energy, stepping).
func (e *Engine[X, B]) TelemetrySample(stepNs int64) telemetry.RankSample {
	phases := e.Timer.SnapshotSeconds()
	for ph, s := range e.Sub.SnapshotSeconds() {
		phases[ph] = s
	}
	return telemetry.RankSample{
		Counters:         e.Counters,
		StepNs:           stepNs,
		Phases:           phases,
		Rounds:           e.Rounds,
		RemoteCells:      e.RemoteCells,
		Sent:             e.C.TrafficTotal(),
		Bodies:           e.Sys.Len(),
		CommNs:           e.commNs,
		EvalBusyNs:       e.evalBusyNs(),
		EvalDuringCommNs: e.evalDuringCommNs,
	}
}

// Exchange runs phases 1 and 2: decomposition, local tree build, and
// the branch exchange that assembles the shared top tree. On return
// Sys holds the redistributed local bodies and the engine is ready
// for WalkGroups.
func (e *Engine[X, B]) Exchange() {
	e.exchange(false)
}

// ExchangeIncremental is Exchange's fast path for the partial force
// evaluations between block-timestep synchronization points: the key
// domain is reused from the last full Exchange (keys.Domain.KeyOf
// clamps, so bodies that drifted outside the stale box quantize to its
// faces) and the decomposer may keep the previous splits when few
// bodies moved (domain.Decomposer.Reuse), skipping the splitter
// bisection and its allreduce rounds. Ownership stays exact -- strays
// are still exchanged -- only the load balance and the domain box go
// slightly stale until the next full Exchange. Must follow at least
// one full Exchange.
func (e *Engine[X, B]) ExchangeIncremental() {
	e.exchange(true)
}

func (e *Engine[X, B]) exchange(incremental bool) {
	e.Timer.Start("decompose")
	if !incremental {
		e.Domain = domain.GlobalDomain(e.C, e.Sys)
	}
	e.dec.Reuse = incremental && !e.Cfg.ColdStart
	res := e.dec.Decompose(e.C, e.Sys, e.Domain)
	e.Sys = res.Sys
	e.Splits = res.Splits
	e.Phys.Prepare(e.Sys)

	// The local tree force-splits cells straddling this rank's
	// interval so every branch cell materializes as a node.
	e.Timer.Start("treebuild")
	e.C.Phase(e.Cfg.PhasePrefix + "treebuild")
	e.Local = e.builder.BuildRange(e.Sys, e.Domain, e.Cfg.MAC, e.Cfg.Bucket,
		e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1])
	e.Counters.CellsBuilt += uint64(e.Local.NCells())
	e.Phys.PostBuild(e.Local)

	e.Timer.Start("branches")
	e.exchangeBranches()
	e.Timer.Stop()
	e.Rounds = 0
}

// exchangeBranches publishes this rank's branch cells and assembles
// the shared top tree (branches plus all their ancestors, moments
// combined across ranks).
func (e *Engine[X, B]) exchangeBranches() {
	e.C.Phase(e.Cfg.PhasePrefix + "branches")
	var mine []Wire[X, B]
	for _, bk := range tree.RangeDecompose(e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1]) {
		c := e.Local.Cell(bk)
		if c == nil {
			continue // no bodies in this part of the interval
		}
		mine = append(mine, Wire[X, B]{
			Key: bk, Mp: c.Mp, Extra: e.Phys.Extra(c), RCrit: c.RCrit,
			N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
		})
	}
	all := msg.Allgather(e.C, mine, e.cellBytes*len(mine))

	e.top = htab.New[node[X]](256)
	e.imported = htab.New[node[X]](1024)
	e.Phys.ResetImports()
	e.RemoteCells = 0

	// Insert branches. Own branches keep their local body ranges so
	// the walker can use them directly; remote leaf branches are
	// marked unfetched.
	var branchKeys []keys.Key
	for r, batch := range all {
		for _, w := range batch {
			c := tree.Cell{
				Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
				ChildMask: w.ChildMask, Leaf: w.Leaf,
			}
			if r == e.C.Rank() {
				c.First = e.Local.Cell(w.Key).First
			} else if w.Leaf {
				c.First = sentinelUnfetched
			}
			e.top.Insert(w.Key, node[X]{Cell: c, Extra: w.Extra})
			branchKeys = append(branchKeys, w.Key)
		}
	}

	// Build ancestors, deepest level first so children always exist
	// when their parent's moments are combined.
	anc := map[keys.Key]bool{}
	for _, bk := range branchKeys {
		for k := bk.Parent(); k != keys.Invalid; k = k.Parent() {
			if anc[k] {
				break // all higher ancestors already recorded
			}
			anc[k] = true
		}
	}
	order := make([]keys.Key, 0, len(anc))
	for k := range anc {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Level() > order[j].Level() })
	for _, k := range order {
		var children []grav.Multipole
		var mask uint8
		var nb int32
		var extra X
		for oct := 0; oct < 8; oct++ {
			if cc := e.top.Ptr(k.Child(oct)); cc != nil {
				children = append(children, cc.Cell.Mp)
				mask |= 1 << uint(oct)
				nb += cc.Cell.N
				extra = e.Phys.CombineExtra(extra, cc.Extra)
			}
		}
		mp := grav.Combine(children)
		center, size := e.Domain.CellCenter(k)
		e.top.Insert(k, node[X]{
			Cell: tree.Cell{
				Key: k, Mp: mp,
				RCrit:     grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), e.Cfg.MAC),
				N:         nb,
				ChildMask: mask,
			},
			Extra: extra,
		})
	}
	if len(branchKeys) > 0 && e.top.Ptr(keys.Root) == nil {
		// Exactly one branch and it is the root itself (single rank
		// holding everything): nothing to do. Otherwise the root must
		// exist.
		if len(branchKeys) != 1 || branchKeys[0] != keys.Root {
			panic("hotengine: top tree has no root")
		}
	}
}

// OwnerOf returns the rank owning a (strictly below-branch) cell,
// from key arithmetic and the split table alone.
func (e *Engine[X, B]) OwnerOf(k keys.Key) int {
	off := tree.KeyOffset(k.MinBody())
	// Find r with Splits[r] <= off < Splits[r+1].
	r := sort.Search(len(e.Splits)-1, func(i int) bool { return e.Splits[i+1] > off })
	if r >= e.C.Size() {
		r = e.C.Size() - 1
	}
	return r
}

// Resolve finds a cell and its physics payload, or reports it
// missing. Lookup order: top tree (authoritative above and at the
// branches, except unfetched remote leaves, which fall through to the
// imports), then the local tree for cells this rank owns, then the
// imported cells. The returned pointers are valid until the next
// import round.
func (e *Engine[X, B]) Resolve(k keys.Key) (*tree.Cell, *X, bool) {
	if n := e.top.Ptr(k); n != nil {
		if n.Cell.Leaf && n.Cell.First == sentinelUnfetched {
			if in := e.importedPtr(k); in != nil {
				return &in.Cell, &in.Extra, true
			}
			return nil, nil, false // bodies must be fetched
		}
		return &n.Cell, &n.Extra, true
	}
	if e.OwnerOf(k) == e.C.Rank() {
		if c := e.Local.Cell(k); c != nil {
			x := e.Phys.Extra(c)
			return c, &x, true
		}
		return nil, nil, false
	}
	if in := e.importedPtr(k); in != nil {
		return &in.Cell, &in.Extra, true
	}
	return nil, nil, false
}

// importedPtr looks up an imported cell, marking a prefetched cell's
// first resolution as a prefetch hit. Resolve runs on the rank
// goroutine only (walks do; pooled evals never resolve), so the mark
// is race-free; the hit count survives a walk miss's counter restore
// because the node's flag is already consumed.
func (e *Engine[X, B]) importedPtr(k keys.Key) *node[X] {
	in := e.imported.Ptr(k)
	if in != nil && in.Prefetched {
		in.Prefetched = false
		e.Counters.PrefetchUsed++
	}
	return in
}

// serve answers a batch of cell requests from src out of the local
// tree. Every requested key must be at or below one of this rank's
// branches, so a miss is a protocol violation. With PrefetchDepth > 0
// each reply piggybacks the subtree below the requested cell.
func (e *Engine[X, B]) serve(src int, reqs []keys.Key) []Reply[X, B] {
	out := make([]Reply[X, B], len(reqs))
	for i, k := range reqs {
		c := e.Local.Cell(k)
		if c == nil {
			panic(fmt.Sprintf("hotengine: rank %d asked rank %d for unknown cell %v", src, e.C.Rank(), k))
		}
		out[i].W = e.wireOf(k, c)
		if e.Cfg.PrefetchDepth > 0 && !c.Leaf {
			out[i].Pre = e.appendSubtree(out[i].Pre, k, c, e.Cfg.PrefetchDepth)
		}
	}
	return out
}

// wireOf packs one local cell for the wire.
func (e *Engine[X, B]) wireOf(k keys.Key, c *tree.Cell) Wire[X, B] {
	w := Wire[X, B]{
		Key: k, Mp: c.Mp, Extra: e.Phys.Extra(c), RCrit: c.RCrit,
		N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
	}
	if c.Leaf {
		w.Bodies = e.Phys.PackLeaf(c)
	}
	return w
}

// appendSubtree packs the children below a local cell, depth levels
// deep: the serve-side speculation that a rank opening a cell will
// shortly want what is underneath it. Children of a local non-leaf
// are local by construction; a missing child octant is simply skipped.
func (e *Engine[X, B]) appendSubtree(dst []Wire[X, B], k keys.Key, c *tree.Cell, depth int) []Wire[X, B] {
	for oct := 0; oct < 8; oct++ {
		if c.ChildMask&(1<<uint(oct)) == 0 {
			continue
		}
		ck := k.Child(oct)
		cc := e.Local.Cell(ck)
		if cc == nil {
			continue
		}
		dst = append(dst, e.wireOf(ck, cc))
		if depth > 1 && !cc.Leaf {
			dst = e.appendSubtree(dst, ck, cc, depth-1)
		}
	}
	return dst
}

// replyBytes is the abm traffic size of one reply: the fixed cell
// record times one plus the piggybacked prefetch cells (leaf body
// columns are accounted separately by the physics, as ever).
func (e *Engine[X, B]) replyBytes(r Reply[X, B]) int {
	return e.cellBytes * (1 + len(r.Pre))
}

// importCell stores a fetched remote cell, copying leaf bodies into
// the physics' import arena. Duplicates are dropped: with prefetch, a
// directly requested cell can arrive a second time inside another
// reply's subtree (or vice versa) within the same round.
func (e *Engine[X, B]) importCell(w Wire[X, B], prefetched bool) {
	if e.imported.Ptr(w.Key) != nil {
		return
	}
	c := tree.Cell{
		Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
		ChildMask: w.ChildMask, Leaf: w.Leaf,
	}
	if w.Leaf {
		start := e.Phys.ImportLeaf(w.N, w.Bodies)
		c.First = -(start + 1)
	}
	e.imported.Insert(w.Key, node[X]{Cell: c, Extra: w.Extra, Prefetched: prefetched})
	if prefetched {
		e.Counters.Prefetched++
	}
	e.RemoteCells++
	// Wake the groups waiting on this cell: a group whose last
	// outstanding key just landed is promoted to the ready queue and
	// can retry -- with incremental delivery, in the middle of the
	// very round that carried the cell.
	if ws, ok := e.keyWaiters[w.Key]; ok {
		delete(e.keyWaiters, w.Key)
		for _, gk := range ws {
			if n := e.waitCount[gk] - 1; n == 0 {
				delete(e.waitCount, gk)
				e.readyBuf = append(e.readyBuf, gk)
			} else {
				e.waitCount[gk] = n
			}
		}
		e.waiterPool = append(e.waiterPool, ws[:0])
	}
}

// onReplyBatch is the abm OnReply hook (bound once): it imports one
// source's reply batch as it arrives inside Round, on the rank
// goroutine. Interleaved with the Progress hook's walks this stays
// race-free -- both run between receives of the same collective --
// and a walk simply sees a monotonically growing cell table.
func (e *Engine[X, B]) onReplyBatch(_ int, reps []Reply[X, B]) {
	for i := range reps {
		e.importCell(reps[i].W, false)
		for _, pw := range reps[i].Pre {
			e.importCell(pw, true)
		}
	}
}

// ResetImports discards every imported cell and the physics' arena,
// so a later WalkGroups re-fetches remote data. Multi-pass physics
// (SPH) uses this between the density and force passes: the second
// pass must see the updated remote densities, not the stale imports.
func (e *Engine[X, B]) ResetImports() {
	e.imported = htab.New[node[X]](1024)
	e.Phys.ResetImports()
}

// WalkGroups runs phases 3 and 4 for one traversal pass: it invokes
// walk for every local leaf group, deferring groups whose walk
// returns missing keys and fetching those cells from their owners in
// batched rounds until every group completes, then running eval for
// each completed group. On a miss the engine restores the counters to
// the snapshot taken before the attempt, so a discarded partial walk
// never inflates the traversal counts -- the paper's performance
// accounting rides on these counters being exact.
//
// eval may be nil, in which case walk must do its own evaluation
// (inline, on the rank goroutine -- the historical schedule, and
// required for passes whose evaluation writes columns the serve path
// snapshots, like SPH density). With eval non-nil and EvalWorkers
// configured, the phase is pipelined: most groups are not walked up
// front but queued, and the msg.Comm Progress hook walks and
// evaluates them on the rank goroutine while the collective rounds
// wait on in-flight messages -- compute fills the communication
// windows instead of preceding them. Completed sweep-side groups
// additionally hand their materialized lists to the worker pool when
// workers could actually run in parallel (spare cores). The slot
// argument tells the adapter which of its Slots() evaluation states
// to use. label names the phase for the Timer and (with the
// configured prefix) the msg traffic accounting.
func (e *Engine[X, B]) WalkGroups(label string, walk WalkFn, eval EvalFn) {
	e.walkGroups(label, nil, walk, eval)
}

// WalkGroupsIf is WalkGroups restricted to the groups for which
// active returns true -- the partial traversal of block timesteps.
// Skipped groups run no walk at all, but every rank still enters the
// same collective rounds (request serving, including prefetch, is
// symmetric), so the call is collective even when a rank's active set
// is empty.
func (e *Engine[X, B]) WalkGroupsIf(label string, active func(g *tree.Cell) bool, walk WalkFn, eval EvalFn) {
	e.walkGroups(label, active, walk, eval)
}

// Pipelined walk tuning. primeBatch is how many distinct missing keys
// the round-0 bootstrap walks inline before entering the first
// collective: enough that the opening request batches are chunky (the
// batching amortization the abm layer rides on), small enough that
// most of the queue is left as window fodder. drainRound is the
// safety valve: past this many rounds the windows are clearly not
// eating the queue (tiny latency, tiny appetite), so fall back to the
// classic inline drain and let the phase terminate on the deferred
// groups alone, well inside MaxRounds.
const (
	primeBatch = 256
	drainRound = 12
)

// walkOne attempts one group's walk with the evaluation state of
// slot, dispatching the eval (pool job for pooled slots, inline for
// slot 0) on completion, and on a miss restoring the counters,
// parking the group on e.waitQ and buffering its new missing keys on
// e.missBuf. Rank goroutine only; callers outside a collective must
// flush missBuf to the phase's abm engine afterwards (inside one,
// posting must wait). Returns whether the group completed.
func (e *Engine[X, B]) walkOne(slot int, gk keys.Key) bool {
	g := e.Local.Cell(gk)
	snapshot := e.Counters
	missing := e.curWalk(slot, gk, g, &e.Counters)
	if missing == nil {
		if e.observe {
			if t0, ok := e.deferredAt[gk]; ok {
				d := time.Since(t0)
				e.Stalls.Observe(uint64(d.Nanoseconds()))
				e.Trace.SpanAt("stall", t0, d)
				delete(e.deferredAt, gk)
			}
		}
		if e.curEval != nil {
			if slot != 0 {
				e.curPool.jobs <- evalJob{slot: slot, gk: gk, g: g, eval: e.curEval}
			} else {
				e.curEval(0, gk, g, &e.Counters)
			}
		}
		return true
	}
	if slot != 0 {
		e.curPool.free <- slot
	}
	// Context switch: restore the counters (keeping PrefetchUsed --
	// the imported nodes' hit flags are already consumed, so the
	// count must survive the restore), defer the group, batch its
	// requests.
	pu := e.Counters.PrefetchUsed
	e.Counters = snapshot
	e.Counters.PrefetchUsed = pu
	e.Counters.Deferred++
	if e.observe {
		if _, ok := e.deferredAt[gk]; !ok {
			e.deferredAt[gk] = time.Now()
		}
	}
	for _, mk := range missing {
		e.waitCount[gk]++
		ws, ok := e.keyWaiters[mk]
		if !ok && len(e.waiterPool) > 0 {
			ws = e.waiterPool[len(e.waiterPool)-1]
			e.waiterPool = e.waiterPool[:len(e.waiterPool)-1]
		}
		e.keyWaiters[mk] = append(ws, gk)
		if !e.pending[mk] {
			e.pending[mk] = true
			e.Counters.Requests++
			e.missBuf = append(e.missBuf, mk)
		}
	}
	return false
}

// acquireSlot hands out a free pool slot for a sweep-side walk, or 0
// (the inline spill slot). Pools without spawned workers always
// spill: materializing an interaction list per queued job only pays
// when another core can evaluate it concurrently; the single-core
// overlap comes from the Progress hook walking queued groups inside
// the communication windows instead.
func (e *Engine[X, B]) acquireSlot(pool *evalPool) int {
	if pool == nil || pool.nworkers == 0 {
		return 0
	}
	select {
	case s := <-pool.free:
		return s
	default:
		return 0
	}
}

// progressOne is the msg.Comm Progress hook: it runs on the rank
// goroutine whenever a blocking collective receive has no message
// yet. Priority order: drain a materialized eval job (frees pipeline
// slots for the next sweep); retry a ready deferred group (its
// requested cells arrived with the previous round, so this is the
// heavy, likely-to-complete work); first-walk a queued fresh group.
// During a collective the cell tables are quiescent -- imports happen
// only after Round returns -- so the walks are safe, and a completed
// walk is bitwise the walk the sweep would have run (the traversal of
// a completed walk is independent of which cells beyond it happen to
// be resolvable). A miss is parked exactly like a sweep miss, with
// its requests buffered until the rank is back outside the
// collective.
func (e *Engine[X, B]) progressOne() bool {
	pool := e.curPool
	if pool != nil && pool.tryRunOne() {
		return true
	}
	if e.curWalk == nil {
		return false
	}
	var gk keys.Key
	if e.readyIdx < len(e.readyBuf) {
		gk = e.readyBuf[e.readyIdx]
		e.readyIdx++
	} else if e.freshIdx < len(e.freshBuf) {
		gk = e.freshBuf[e.freshIdx]
		e.freshIdx++
	} else {
		return false
	}
	t0 := time.Now()
	e.walkOne(0, gk)
	if pool != nil {
		pool.busyNs.Add(time.Since(t0).Nanoseconds())
	}
	return true
}

func (e *Engine[X, B]) walkGroups(label string, active func(g *tree.Cell) bool, walk WalkFn, eval EvalFn) {
	e.Timer.Start(label)
	ph := e.phases[label]
	if ph == nil {
		ph = &walkPhase[X, B]{
			eng:   abm.New[keys.Key, Reply[X, B]](e.C, KeyWireBytes(), e.cellBytes, e.serve),
			label: e.Cfg.PhasePrefix + label,
		}
		ph.eng.RepBytes = e.replyBytes
		ph.eng.OnReply = e.onReply
		e.phases[label] = ph
	}
	eng := ph.eng
	eng.Trace = e.Trace
	e.C.Phase(ph.label)

	pool := e.pool
	if eval == nil {
		pool = nil // inline-only pass
	}
	pipelined := pool != nil
	e.curWalk, e.curEval, e.curPool = walk, eval, pool
	if pipelined {
		// Collective receives that would block instead walk queued
		// groups and run queued evals on this goroutine
		// (msg.Comm.Progress): compute drains inside the
		// communication windows even on one core.
		e.C.Progress = e.progress
	}
	defer func() {
		e.C.Progress = nil
		e.curWalk, e.curEval, e.curPool = nil, nil, nil
	}()

	// Pipelined phases queue the groups (freshBuf) and let the
	// Progress hook consume them; classic phases start everything on
	// the retry queue, which round 0's sweep drains in full -- exactly
	// the historical schedule.
	fresh := e.freshBuf[:0]
	ready := e.readyBuf[:0]
	for _, gk := range e.Local.Groups {
		if active == nil || active(e.Local.Cell(gk)) {
			if pipelined {
				fresh = append(fresh, gk)
			} else {
				ready = append(ready, gk)
			}
		}
	}
	e.freshBuf, e.freshIdx = fresh, 0
	e.readyBuf, e.readyIdx = ready, 0
	e.missBuf = e.missBuf[:0]
	if e.pending == nil {
		e.pending = make(map[keys.Key]bool)
		e.waitCount = make(map[keys.Key]int)
		e.keyWaiters = make(map[keys.Key][]keys.Key)
	}
	clear(e.pending)
	clear(e.waitCount)
	for mk, ws := range e.keyWaiters {
		e.waiterPool = append(e.waiterPool, ws[:0])
		delete(e.keyWaiters, mk)
	}

	// Stall observation (off unless tracing or the histogram is
	// attached): a group's stall runs from its first deferral to the
	// walk that finally completes it, spanning however many rounds
	// that takes.
	e.observe = e.Stalls != nil || e.Trace != nil
	if e.observe && e.deferredAt == nil {
		e.deferredAt = make(map[keys.Key]time.Time)
	}
	clear(e.deferredAt)

	for round := 0; ; round++ {
		if round > e.Cfg.MaxRounds {
			// One rank declaring the protocol stuck must not strand
			// the others inside the next collective: abort the whole
			// world so every rank unwinds with its round state (noted
			// by abm.Round) attached to the WorldError.
			e.C.Abort(fmt.Errorf(
				"hotengine: request rounds exceeded MaxRounds=%d in phase %q: %d groups deferred, %d cells pending, %d rounds since exchange",
				e.Cfg.MaxRounds, label,
				len(e.readyBuf)-e.readyIdx+len(e.waitCount)+len(e.freshBuf)-e.freshIdx,
				len(e.pending), e.Rounds))
		}
		// Retry sweep: groups whose requested cells have all arrived
		// (importCell promoted them) walk again, straight into a pool
		// slot when a worker could drain it. Compact the consumed
		// prefix first so the buffer never grows without bound.
		if e.readyIdx > 0 {
			n := copy(e.readyBuf, e.readyBuf[e.readyIdx:])
			e.readyBuf, e.readyIdx = e.readyBuf[:n], 0
		}
		for e.readyIdx < len(e.readyBuf) {
			gk := e.readyBuf[e.readyIdx]
			e.readyIdx++
			e.walkOne(e.acquireSlot(pool), gk)
		}
		if round == 0 {
			// Bootstrap: walk queued groups inline until the first
			// request batch is primed (or, serially, until everything
			// simply completes). Without this the opening rounds
			// would carry near-empty batches.
			for e.freshIdx < len(e.freshBuf) && len(e.missBuf) < primeBatch {
				gk := e.freshBuf[e.freshIdx]
				e.freshIdx++
				e.walkOne(e.acquireSlot(pool), gk)
			}
		}
		if round >= drainRound {
			for e.freshIdx < len(e.freshBuf) {
				gk := e.freshBuf[e.freshIdx]
				e.freshIdx++
				e.walkOne(e.acquireSlot(pool), gk)
			}
		}
		for _, mk := range e.missBuf {
			eng.Post(e.OwnerOf(mk), mk)
		}
		e.missBuf = e.missBuf[:0]

		// The collectives are where the Progress hook (and, with
		// spare cores, the eval workers) eat the queued work; time
		// them and the eval/walk busy time inside them for the
		// overlap report. Replies import incrementally as each source
		// batch lands (abm OnReply), promoting waiting groups
		// mid-round, so hook retries run against data delivered by
		// the very round they overlap.
		var t0 time.Time
		var busy0 int64
		if pool != nil {
			t0 = time.Now()
			busy0 = pool.busyNs.Load()
		}
		work := len(e.readyBuf)-e.readyIdx+len(e.waitCount)+len(e.freshBuf)-e.freshIdx > 0
		more := eng.AnyPendingGlobal(work)
		if !more {
			if pool != nil {
				e.noteComm(pool, t0, busy0)
			}
			break
		}
		// Keys discovered by hook walks during AnyPendingGlobal can
		// still make this round's batches.
		for _, mk := range e.missBuf {
			eng.Post(e.OwnerOf(mk), mk)
		}
		e.missBuf = e.missBuf[:0]
		eng.Round()
		e.Rounds++
		if pool != nil {
			e.noteComm(pool, t0, busy0)
		}
		// Requests discovered inside the collectives (hook walks that
		// missed) post now, joining the next round's batches.
		for _, mk := range e.missBuf {
			eng.Post(e.OwnerOf(mk), mk)
		}
		e.missBuf = e.missBuf[:0]
	}
	if pool != nil {
		// Drain: the rank helps eat the remaining backlog, waits out the
		// in-flight worker evals, folds the private counters into the
		// rank's (uint64 sums, order-independent), and returns the slot
		// tokens for the next phase.
		for pool.tryRunOne() {
		}
		pool.quiesce()
		for i := range pool.ctrs {
			e.Counters.Add(pool.ctrs[i])
			pool.ctrs[i] = diag.Counters{}
		}
		pool.release()
	}
	e.Timer.Stop()
}

// noteComm accounts one collective window: its wall time, and how
// much eval-worker busy time landed inside it (whole-job granularity,
// clamped to workers x window so a long job finishing just after the
// window opens cannot over-credit).
func (e *Engine[X, B]) noteComm(pool *evalPool, t0 time.Time, busy0 int64) {
	dt := time.Since(t0).Nanoseconds()
	e.commNs += dt
	db := pool.busyNs.Load() - busy0
	// workers + the rank goroutine itself (Progress hook) can all be
	// evaluating inside the window.
	if lim := int64(pool.nworkers+1) * dt; db > lim {
		db = lim
	}
	e.evalDuringCommNs += db
}
