package hotengine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/keys"
	"repro/internal/tree"
)

// The walk/eval pipeline. The paper hides communication latency by
// keeping the floating-point units busy while batched messages are in
// flight; here that means the rank goroutine only *walks* (builds
// interaction lists, defers on missing cells, runs the collective
// rounds) while completed groups are evaluated by a small pool of
// worker goroutines. The decoupling that makes this hide latency on
// any core count is slots vs workers: a slot is one in-flight group's
// evaluation state (the adapter keeps a walker/list per slot, indexed
// by the slot argument of WalkFn/EvalFn), and there are many more
// slots than workers. The queued backlog of completed-but-unevaluated
// groups is the paper's pool of context-switched work: when the rank
// goroutine parks in an Alltoallv, the workers drain the backlog, so
// kernel time fills the communication window instead of preceding it.
//
// Determinism: the walk stage stays on the rank goroutine (tree
// tables, request posting, and e.Counters stay single-owner), lists
// are self-contained copies, group body ranges are disjoint, and each
// worker accumulates into its own diag.Counters folded in at phase
// drain -- uint64 sums are order-independent, so forces *and* counts
// are bitwise identical to the inline schedule at any worker count.

// WalkFn attempts one group's traversal using the evaluation state of
// the given slot, returning nil on completion or the missing cell keys
// to defer on. It always runs on the rank goroutine; ctr is the
// engine's own counter set.
type WalkFn func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key

// EvalFn evaluates one completed group's interactions from the given
// slot's state. With the pipeline on it may run on a worker goroutine
// concurrently with later walks; ctr is then that worker's private
// counter set. It must touch only the slot's state, the group's own
// (disjoint) body rows, and ctr.
type EvalFn func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters)

// evalJob is one completed group handed to the eval workers.
type evalJob struct {
	slot int
	gk   keys.Key
	g    *tree.Cell
	eval EvalFn
}

// evalPool runs EvalFn jobs on nworkers goroutines across nslots
// in-flight slot states. Slot 0 is reserved for the rank goroutine's
// inline spill path and never enters the pool; pooled slots are
// 1..nslots. The free channel is a token pool: a slot index is either
// in free, held briefly by the rank between acquire and dispatch, or
// attached to a queued/running job. Channel handoffs give the
// happens-before edges both ways (rank's list writes -> worker eval;
// worker counter writes -> rank fold at drain).
//
// The rank goroutine is itself a consumer: tryRunOne steals one queued
// job, which the engine wires into msg.Comm.Progress so a Recv that
// would block inside a collective drains the backlog instead of
// sleeping (MPI_Test-and-compute). On a single-CPU host this is where
// nearly all of the overlap comes from -- the rank never parks while
// it has completed groups in hand -- while on multi-core hosts the
// workers drain concurrently with the walk as well.
type evalPool struct {
	nworkers int
	nslots   int
	jobs     chan evalJob
	free     chan int
	// ctrs is one private counter set per worker, plus one (the last
	// entry) for jobs the rank goroutine runs via tryRunOne; all are
	// folded into the engine's counters when a phase drains.
	ctrs []diag.Counters
	// busyNs accumulates worker time spent inside EvalFn (whole-job
	// granularity: a job spanning a comm-window boundary is attributed
	// to the window that sees it complete).
	busyNs atomic.Int64
	// held buffers the tokens quiesce collects.
	held []int
	wg   sync.WaitGroup
}

func newEvalPool(workers, slots int) *evalPool {
	// Never oversubscribe: a worker goroutine competing with the rank
	// goroutines for the same core steals CPU during the walk sweeps
	// and finishes the evals exactly when overlap cannot help, leaving
	// the backlog empty by the time the collectives open. Cap the
	// spawned workers at GOMAXPROCS-1 -- on a single-core host that is
	// zero, and the rank goroutine's Progress hook is the entire drain
	// path (which is where the overlap comes from there anyway).
	if max := runtime.GOMAXPROCS(0) - 1; workers > max {
		workers = max
	}
	p := &evalPool{
		nworkers: workers,
		nslots:   slots,
		// jobs is deep enough that a dispatch never blocks: at most
		// nslots jobs can be in flight (token conservation).
		jobs: make(chan evalJob, slots),
		free: make(chan int, slots),
		ctrs: make([]diag.Counters, workers+1),
		held: make([]int, 0, slots),
	}
	for s := 1; s <= slots; s++ {
		p.free <- s
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run(i)
	}
	return p
}

func (p *evalPool) run(id int) {
	defer p.wg.Done()
	ctr := &p.ctrs[id]
	for job := range p.jobs {
		t0 := time.Now()
		job.eval(job.slot, job.gk, job.g, ctr)
		p.busyNs.Add(time.Since(t0).Nanoseconds())
		p.free <- job.slot
	}
}

// tryRunOne steals one queued job and runs it on the calling (rank)
// goroutine, into the rank's private pool counter cell. Returns false
// when no job is queued. Same-goroutine with the walk, so no
// synchronization beyond the channels is needed; the busy time it
// accumulates lands inside whatever comm window invoked it.
func (p *evalPool) tryRunOne() bool {
	select {
	case job := <-p.jobs:
		t0 := time.Now()
		job.eval(job.slot, job.gk, job.g, &p.ctrs[p.nworkers])
		p.busyNs.Add(time.Since(t0).Nanoseconds())
		p.free <- job.slot
		return true
	default:
		return false
	}
}

// quiesce blocks until every dispatched job has completed, collecting
// all nslots tokens (workers only return tokens after the eval and its
// counter writes, so holding every token proves the pool is idle and
// fences the workers' writes). release hands the tokens back for the
// next phase.
func (p *evalPool) quiesce() {
	p.held = p.held[:0]
	for len(p.held) < p.nslots {
		p.held = append(p.held, <-p.free)
	}
}

func (p *evalPool) release() {
	for _, s := range p.held {
		p.free <- s
	}
	p.held = p.held[:0]
}

// Close quiesces and stops the workers. The pool must not be used
// afterwards. The caller drains any leftover backlog first (phases
// always do), but with zero spawned workers nobody else would, so
// drain defensively before collecting the tokens.
func (p *evalPool) Close() {
	for p.tryRunOne() {
	}
	p.quiesce()
	close(p.jobs)
	p.wg.Wait()
}
