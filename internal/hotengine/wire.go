package hotengine

import (
	"fmt"
	"reflect"

	"repro/internal/grav"
	"repro/internal/keys"
)

// Wire is the packed cell record exchanged between ranks, for both the
// branch allgather and request replies. X is the physics' per-cell
// moment payload (nothing for gravity, the strength sum for vortex
// dynamics); Bodies is the physics' leaf body payload, present in
// replies to leaf requests only and excluded from the fixed wire size
// (its cost is the per-body columns, accounted separately by the
// physics if desired).
type Wire[X, B any] struct {
	Key       keys.Key
	Mp        grav.Multipole
	Extra     X
	RCrit     float64
	N         int32
	ChildMask uint8
	Leaf      bool
	// Bodies carries leaf body columns (replies only; zero in branch
	// messages).
	Bodies B
}

// Reply is one request reply on the wire: the requested cell W plus
// any speculative subtree cells Pre piggybacked by serve-side prefetch
// (Config.PrefetchDepth levels below W, in DFS order). Wrapping rather
// than extending Wire keeps replies 1:1 with requests -- the alignment
// the abm engine guarantees -- and keeps the fixed Wire record (and
// its pinned packed size) unchanged. A Reply's wire cost is
// CellWireBytes times 1+len(Pre).
type Reply[X, B any] struct {
	W   Wire[X, B]
	Pre []Wire[X, B]
}

// CellWireBytes returns the packed wire size of one Wire[X, B] record
// (every fixed field, excluding the leaf body payload). This is the
// single place cell wire sizes come from: the traffic counters in
// internal/msg, and through them the perfmodel times, ride on these
// numbers, and deriving them from the struct keeps a payload change
// from silently skewing the accounting.
func CellWireBytes[X, B any]() int {
	t := reflect.TypeOf((*Wire[X, B])(nil)).Elem()
	size := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Name == "Bodies" {
			continue
		}
		size += packedSize(f.Type)
	}
	return size
}

// KeyWireBytes is the packed size of one cell request (a bare key).
func KeyWireBytes() int {
	return packedSize(reflect.TypeOf(keys.Key(0)))
}

// packedSize returns the size of a value of type t packed with no
// alignment padding, the convention the wire accounting has always
// used (a bool is one byte, a key eight). Types with no well-defined
// packed size (slices, maps, pointers, strings) panic: they must not
// appear in the fixed part of a wire record.
func packedSize(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int64, reflect.Uint64, reflect.Float64, reflect.Int, reflect.Uint, reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.Array:
		return t.Len() * packedSize(t.Elem())
	case reflect.Struct:
		size := 0
		for i := 0; i < t.NumField(); i++ {
			size += packedSize(t.Field(i).Type)
		}
		return size
	default:
		panic(fmt.Sprintf("hotengine: type %v has no packed wire size", t))
	}
}
