package hotengine_test

import (
	"testing"

	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/hotengine"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
)

// TestWalkGroupsSteadyStateAllocs pins the steady-state allocation
// behaviour of the walk phase: the abm engine, the pending/stall maps
// and the deferral buffers are persistent per (engine, label), so a
// warm WalkGroups call on a settled tree must not allocate on the
// rank goroutine's hot path -- neither inline nor with the eval pool
// attached.
func TestWalkGroupsSteadyStateAllocs(t *testing.T) {
	global := randomSystem(500, 4242)
	msg.Run(1, func(c *msg.Comm) {
		phys := &countPhysics{}
		var e *hotengine.Engine[float64, []int64]
		phys.e = func() *hotengine.Engine[float64, []int64] { return e }
		e = hotengine.New[float64, []int64](c, scatterTo(global, c), phys, hotengine.Config{
			MAC:    grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5},
			Bucket: 8,
		})
		defer e.Close()
		e.Exchange()

		walk := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
			ctr.Traversals++
			return nil
		}
		eval := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) {
			ctr.PP++
		}

		// Warm up: first call per label builds the persistent abm
		// engine and the scratch maps.
		e.WalkGroups("walk", walk, nil)
		if avg := testing.AllocsPerRun(20, func() {
			e.WalkGroups("walk", walk, nil)
		}); avg > 2 {
			t.Errorf("inline WalkGroups allocates %.1f/call in steady state, want <= 2", avg)
		}

		// Same with the eval pipeline attached: slot tokens, job
		// structs and counter folding must all ride on persistent
		// storage.
		e.ConfigureOverlap(1, 0)
		e.WalkGroups("walk", walk, eval)
		if avg := testing.AllocsPerRun(20, func() {
			e.WalkGroups("walk", walk, eval)
		}); avg > 2 {
			t.Errorf("pipelined WalkGroups allocates %.1f/call in steady state, want <= 2", avg)
		}
	})
}

// exhaustiveIDWalk returns a WalkFn that visits every reachable leaf
// (no opening criterion), deferring on unresolved cells, and records
// each resolved cell in ctr.Traversals. Completed walks add the leaf
// IDs to ids.
func exhaustiveIDWalk(e *hotengine.Engine[float64, []int64], phys *countPhysics, ids map[int64]bool) hotengine.WalkFn {
	var stack []keys.Key
	return func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
		var missing []keys.Key
		got := []int64{}
		stack = append(stack[:0], keys.Root)
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cell, _, ok := e.Resolve(k)
			if !ok {
				missing = append(missing, k)
				continue
			}
			ctr.Traversals++
			if cell.Leaf {
				if cell.First >= 0 {
					got = append(got, e.Sys.ID[cell.First:cell.First+cell.N]...)
				} else {
					lo := -(cell.First + 1)
					got = append(got, phys.impID[lo:lo+cell.N]...)
				}
				continue
			}
			for oct := 0; oct < 8; oct++ {
				if cell.ChildMask&(1<<uint(oct)) != 0 {
					stack = append(stack, k.Child(oct))
				}
			}
		}
		if missing != nil {
			return missing
		}
		for _, id := range got {
			ids[id] = true
		}
		return nil
	}
}

// TestPrefetchPiggybacking drives the exhaustive walk at np=4 with and
// without serve-side prefetch. Depth 1 must cut the request rounds
// (children arrive with their parent), account speculative imports in
// the Prefetched/PrefetchUsed counters, and leave the completed-walk
// traversal counts bitwise identical -- prefetch changes when cells
// arrive, never what the walk does with them.
func TestPrefetchPiggybacking(t *testing.T) {
	const n, np = 700, 4
	type rankStat struct {
		trav, prefetched, used uint64
		rounds, remote, ids    int
	}
	run := func(depth int) []rankStat {
		stats := make([]rankStat, np)
		global := randomSystem(n, 12345)
		msg.Run(np, func(c *msg.Comm) {
			phys := &countPhysics{}
			var e *hotengine.Engine[float64, []int64]
			phys.e = func() *hotengine.Engine[float64, []int64] { return e }
			e = hotengine.New[float64, []int64](c, scatterTo(global, c), phys, hotengine.Config{
				MAC:           grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5},
				Bucket:        8,
				PrefetchDepth: depth,
			})
			e.Exchange()
			ids := map[int64]bool{}
			e.WalkGroups("walk", exhaustiveIDWalk(e, phys, ids), nil)
			stats[c.Rank()] = rankStat{
				trav:       e.Counters.Traversals,
				prefetched: e.Counters.Prefetched,
				used:       e.Counters.PrefetchUsed,
				rounds:     e.Rounds,
				remote:     e.RemoteCells,
				ids:        len(ids),
			}
		})
		return stats
	}

	base := run(0)
	pre := run(1)
	baseRounds, preRounds := 0, 0
	for r := 0; r < np; r++ {
		if base[r].ids != n || pre[r].ids != n {
			t.Fatalf("rank %d: incomplete ID sets (%d / %d of %d)", r, base[r].ids, pre[r].ids, n)
		}
		if base[r].prefetched != 0 || base[r].used != 0 {
			t.Errorf("rank %d: depth 0 recorded prefetch activity (%d/%d)", r, base[r].used, base[r].prefetched)
		}
		if pre[r].prefetched == 0 {
			t.Errorf("rank %d: depth 1 imported no cells speculatively", r)
		}
		if pre[r].used == 0 || pre[r].used > pre[r].prefetched {
			t.Errorf("rank %d: prefetch hits %d of %d speculative imports", r, pre[r].used, pre[r].prefetched)
		}
		if pre[r].trav != base[r].trav {
			t.Errorf("rank %d: traversal count changed with prefetch: %d vs %d", r, pre[r].trav, base[r].trav)
		}
		if pre[r].rounds > base[r].rounds {
			t.Errorf("rank %d: prefetch raised the request rounds: %d vs %d", r, pre[r].rounds, base[r].rounds)
		}
		// Dedup holds: speculative plus direct imports never exceed the
		// baseline's total fetch demand by more than the wasted
		// speculation, and every import is unique by construction.
		if pre[r].remote < base[r].remote {
			t.Errorf("rank %d: prefetch run imported fewer cells (%d) than the walk needs (%d)", r, pre[r].remote, base[r].remote)
		}
		baseRounds += base[r].rounds
		preRounds += pre[r].rounds
	}
	if preRounds >= baseRounds {
		t.Errorf("prefetch did not cut total request rounds: %d vs %d", preRounds, baseRounds)
	}
}
