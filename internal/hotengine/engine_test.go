package hotengine_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/hotengine"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// countPhysics is a minimal synthetic physics used to exercise the
// engine core in isolation: the per-cell payload is the body count
// (as a float, with addition as the combine rule) and the leaf
// payload is the particle IDs.
type countPhysics struct {
	e     func() *hotengine.Engine[float64, []int64]
	impID []int64
}

func (p *countPhysics) Prepare(sys *core.System) {}
func (p *countPhysics) PostBuild(t *tree.Tree)   {}

func (p *countPhysics) Extra(c *tree.Cell) float64           { return float64(c.N) }
func (p *countPhysics) CombineExtra(acc, ch float64) float64 { return acc + ch }

func (p *countPhysics) PackLeaf(c *tree.Cell) []int64 {
	e := p.e()
	return e.Sys.ID[c.First : c.First+c.N]
}

func (p *countPhysics) ImportLeaf(n int32, b []int64) int32 {
	start := int32(len(p.impID))
	p.impID = append(p.impID, b...)
	return start
}

func (p *countPhysics) ResetImports() { p.impID = p.impID[:0] }

func randomSystem(n int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	for i := 0; i < n; i++ {
		sys.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		sys.Mass[i] = 1
	}
	return sys
}

func scatterTo(global *core.System, c *msg.Comm) *core.System {
	n := global.Len()
	lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
	local := core.New(0)
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	return local
}

// TestEngineCoreFullTraversal runs the pipeline with the synthetic
// physics on several rank counts and does an exhaustive walk (no
// opening criterion: every leaf is visited), checking that the top
// tree's root payload combines to the global count and that every
// rank assembles the complete global ID set through the batched
// request rounds.
func TestEngineCoreFullTraversal(t *testing.T) {
	const n = 700
	for _, np := range []int{1, 2, 4, 8} {
		global := randomSystem(n, 12345)
		var mu sync.Mutex
		seen := map[int]map[int64]bool{}
		msg.Run(np, func(c *msg.Comm) {
			phys := &countPhysics{}
			var e *hotengine.Engine[float64, []int64]
			phys.e = func() *hotengine.Engine[float64, []int64] { return e }
			e = hotengine.New[float64, []int64](c, scatterTo(global, c), phys, hotengine.Config{
				MAC:    grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5},
				Bucket: 8,
			})
			e.Exchange()

			// The shared top tree's root must exist on every rank and
			// carry the combined payload: the global body count.
			root, extra, ok := e.Resolve(keys.Root)
			if !ok {
				t.Errorf("np=%d rank=%d: root not resolvable", np, c.Rank())
				return
			}
			if root.N != int32(n) || *extra != float64(n) {
				t.Errorf("np=%d rank=%d: root N=%d extra=%v, want %d", np, c.Rank(), root.N, *extra, n)
			}

			// Exhaustive walk: gather every particle ID reachable from
			// the root, deferring on missing cells so the request rounds
			// fetch remote leaves.
			ids := map[int64]bool{}
			var stack []keys.Key
			e.WalkGroups("walk", func(slot int, gk keys.Key, g *tree.Cell, _ *diag.Counters) []keys.Key {
				var missing []keys.Key
				got := []int64{}
				stack = append(stack[:0], keys.Root)
				for len(stack) > 0 {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					cell, _, ok := e.Resolve(k)
					if !ok {
						missing = append(missing, k)
						continue
					}
					if cell.Leaf {
						if cell.First >= 0 {
							got = append(got, e.Sys.ID[cell.First:cell.First+cell.N]...)
						} else {
							lo := -(cell.First + 1)
							got = append(got, phys.impID[lo:lo+cell.N]...)
						}
						continue
					}
					for oct := 0; oct < 8; oct++ {
						if cell.ChildMask&(1<<uint(oct)) != 0 {
							stack = append(stack, k.Child(oct))
						}
					}
				}
				if missing != nil {
					return missing
				}
				for _, id := range got {
					ids[id] = true
				}
				return nil
			}, nil)

			if np > 1 && e.RemoteCells == 0 {
				t.Errorf("np=%d rank=%d: exhaustive walk imported no remote cells", np, c.Rank())
			}
			mu.Lock()
			seen[c.Rank()] = ids
			mu.Unlock()
		})
		for r := 0; r < np; r++ {
			if len(seen[r]) != n {
				t.Fatalf("np=%d rank=%d: saw %d of %d particle IDs", np, r, len(seen[r]), n)
			}
		}
	}
}

// TestEngineTimerPhases checks the diagnostics parity the shared core
// provides: every instantiation gets the same per-phase breakdown.
func TestEngineTimerPhases(t *testing.T) {
	global := randomSystem(300, 9)
	msg.Run(2, func(c *msg.Comm) {
		phys := &countPhysics{}
		var e *hotengine.Engine[float64, []int64]
		phys.e = func() *hotengine.Engine[float64, []int64] { return e }
		e = hotengine.New[float64, []int64](c, scatterTo(global, c), phys, hotengine.Config{
			MAC: grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5}, Bucket: 8,
		})
		e.Exchange()
		e.WalkGroups("walk", func(slot int, gk keys.Key, g *tree.Cell, _ *diag.Counters) []keys.Key {
			return nil
		}, nil)
		want := []string{"decompose", "treebuild", "branches", "walk"}
		got := e.Timer.Phases()
		if len(got) != len(want) {
			t.Fatalf("timer phases = %v, want %v", got, want)
		}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("timer phases = %v, want %v", got, want)
			}
		}
	})
}

// A walk that never converges (every group keeps reporting the same
// key missing) must end in a prompt world-wide abort when MaxRounds
// is exceeded -- not the panic-plus-survivor-deadlock it used to be.
// The WorldError carries each rank's batched-request round so the
// report shows how far the protocol got.
func TestMaxRoundsAbort(t *testing.T) {
	global := randomSystem(64, 77)
	done := make(chan *msg.WorldError, 1)
	go func() {
		w := msg.NewWorld(2)
		done <- w.RunErr(func(c *msg.Comm) {
			phys := &countPhysics{}
			var e *hotengine.Engine[float64, []int64]
			phys.e = func() *hotengine.Engine[float64, []int64] { return e }
			e = hotengine.New[float64, []int64](c, scatterTo(global, c), phys, hotengine.Config{
				MAC:       grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5},
				Bucket:    8,
				MaxRounds: 3,
			})
			e.Exchange()
			// Pathological walk: the root always resolves, but this walk
			// insists it is missing, so the rounds can never drain.
			e.WalkGroups("walk", func(slot int, gk keys.Key, g *tree.Cell, _ *diag.Counters) []keys.Key {
				return []keys.Key{keys.Root}
			}, nil)
		})
	}()
	var err *msg.WorldError
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("MaxRounds overrun hung instead of aborting")
	}
	if err == nil {
		t.Fatal("expected a WorldError from the MaxRounds backstop")
	}
	if !strings.Contains(err.Cause.Error(), "MaxRounds=3") {
		t.Fatalf("cause = %v, want a MaxRounds overrun", err.Cause)
	}
	if !strings.Contains(err.Cause.Error(), `phase "walk"`) {
		t.Fatalf("cause does not name the phase: %v", err.Cause)
	}
	// Both ranks ran batched-request rounds before the abort; the
	// state table must carry that progress.
	for _, s := range err.Ranks {
		if s.Round == 0 {
			t.Fatalf("rank %d shows no request rounds: %+v", s.Rank, err.Ranks)
		}
	}
}
