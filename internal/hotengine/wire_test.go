package hotengine_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/hotengine"
	"repro/internal/parallel"
	"repro/internal/sph"
	"repro/internal/vec"
	"repro/internal/vortex"
)

// mirror structs re-declare each physics' fixed wire record with
// encoding/binary-sizeable fields, so the reflection-derived sizes
// are checked against an independent accounting. The historical
// hand-computed constants (118 for gravity, 142 for vortex) are
// pinned too: the msg traffic counters, and the perfmodel times
// derived from them, must not drift when a payload changes silently.

type gravMirror struct {
	Key       uint64
	Mp        [12]float64 // M, COM, Q (6 of Sym3), B2, Bmax
	RCrit     float64
	N         int32
	ChildMask uint8
	Leaf      bool
}

type vortexMirror struct {
	Key       uint64
	Mp        [12]float64
	ASum      [3]float64
	RCrit     float64
	N         int32
	ChildMask uint8
	Leaf      bool
}

func TestCellWireBytesMatchDeclaredRecords(t *testing.T) {
	cases := []struct {
		name   string
		got    int
		mirror any
		legacy int
	}{
		{"gravity", hotengine.CellWireBytes[hotengine.None, parallel.Leaf](), gravMirror{}, 118},
		{"vortex", hotengine.CellWireBytes[vec.V3, vortex.VLeaf](), vortexMirror{}, 142},
		{"sph", hotengine.CellWireBytes[hotengine.None, sph.Leaf](), gravMirror{}, 118},
	}
	for _, c := range cases {
		want := binary.Size(c.mirror)
		if c.got != want {
			t.Errorf("%s: CellWireBytes = %d, binary.Size of mirror record = %d", c.name, c.got, want)
		}
		if c.got != c.legacy {
			t.Errorf("%s: CellWireBytes = %d, historical wire constant = %d (traffic accounting would shift)", c.name, c.got, c.legacy)
		}
	}
}

func TestKeyWireBytes(t *testing.T) {
	if got := hotengine.KeyWireBytes(); got != 8 {
		t.Fatalf("KeyWireBytes = %d, want 8", got)
	}
}

func TestCellWireBytesRejectsUnsizeablePayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CellWireBytes accepted a slice-valued cell payload; wire sizes would be wrong")
		}
	}()
	// A slice has no fixed packed size; putting one in the per-cell
	// payload (rather than the leaf body payload) must be rejected.
	hotengine.CellWireBytes[[]float64, parallel.Leaf]()
}
