package hot

// One benchmark per table and figure of the paper (see DESIGN.md's
// experiment index), plus ablation benches for the design choices the
// paper calls out. The per-experiment benches report paper-vs-ours
// ratios as custom metrics ("paper_ratio" = ours/paper, ~1.0 when the
// reproduction matches); wall-clock time of the bench itself is the
// host cost of regenerating the result, not the 1997 wall time.

import (
	"math"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/ic"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/npb"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/rsqrt"
	"repro/internal/tree"
	"repro/internal/vec"
)

func reportRows(b *testing.B, rows []experiments.Row) {
	for _, r := range rows {
		b.ReportMetric(r.Ratio(), "paper_ratio/"+r.ID)
	}
}

// --- headline results ----------------------------------------------------

func BenchmarkE1_NSquaredASCIRed(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E1(2000, 4, 1).Rows
	}
	reportRows(b, rows)
}

func BenchmarkE2_TreecodePeak(b *testing.B) {
	var res experiments.E2Result
	for i := 0; i < b.N; i++ {
		res = experiments.E2(16, 4, 2)
	}
	reportRows(b, res.Rows[:1])
	b.ReportMetric(res.PerBodyStep, "interactions/body/step")
}

func BenchmarkE2_TreecodeSustained(b *testing.B) {
	var res experiments.E2Result
	for i := 0; i < b.N; i++ {
		res = experiments.E2(16, 4, 2)
	}
	reportRows(b, res.Rows[1:2])
}

func BenchmarkE2_EfficiencyRatio(b *testing.B) {
	var res experiments.E2Result
	for i := 0; i < b.N; i++ {
		res = experiments.E2(16, 4, 2)
	}
	reportRows(b, res.Rows[2:])
}

func BenchmarkE3_Loki(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E3(16, 2)
	}
	reportRows(b, rows)
}

func BenchmarkE4_VortexHyglac(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E4(24, 3, 4)
	}
	reportRows(b, rows)
}

func BenchmarkE5_SC96Combined(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E5(16, 2)
	}
	reportRows(b, rows)
}

func BenchmarkE6_UpdateRate(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E6(16, 4, 2)
	}
	reportRows(b, rows)
}

// --- tables ----------------------------------------------------------------

func BenchmarkT1_LokiPrice(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = perfmodel.Total(perfmodel.Table1Loki)
	}
	b.ReportMetric(total/perfmodel.Table1Total, "paper_ratio/T1")
}

func BenchmarkT2_SpotPrices(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = perfmodel.Aug97SystemUSD()
	}
	b.ReportMetric(total/28000, "paper_ratio/T2")
}

func BenchmarkT3_NPBClassB(b *testing.B) {
	var rows []experiments.NPBRow
	for i := 0; i < b.N; i++ {
		rows = experiments.NPBTable3(npb.MiniA)
	}
	// Paper Table 3 Red/Loki ratios (PGI columns): BT 445.5/354.6,
	// SP 334.8/255.5, LU 490.2/428.6, MG 363.7/296.8, EP 7.1/8.9,
	// IS 38.0/14.8.
	paper := map[string]float64{
		"BT": 445.5 / 354.6, "SP": 334.8 / 255.5, "LU": 490.2 / 428.6,
		"MG": 363.7 / 296.8, "EP": 7.1 / 8.9, "IS": 38.0 / 14.8,
	}
	for _, r := range rows {
		if p, ok := paper[r.Kernel]; ok && p > 0 {
			b.ReportMetric(r.RedOverLoki/p, "redloki_ratio/"+r.Kernel)
		}
	}
}

func BenchmarkT4_NPBScaling(b *testing.B) {
	var tab map[int][]experiments.NPBRow
	for i := 0; i < b.N; i++ {
		tab = experiments.NPBTable4(npb.MiniA, []int{1, 4, 16})
	}
	// Paper Table 4: LU scales 31 -> 453 Mflops from 1 to 16 procs
	// (speedup 14.6); report our modeled speedups per kernel.
	for k, kernel := range npb.Kernels {
		s1 := tab[1][k].LokiMops
		s16 := tab[16][k].LokiMops
		if s1 > 0 {
			b.ReportMetric(s16/s1, "speedup16/"+kernel)
		}
	}
}

// --- figures ----------------------------------------------------------------

func BenchmarkF1_DensityImage(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure(dir+"/f1.pgm", 16, 2, 1, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3_NPBScalingSeries(b *testing.B) {
	// Figure 3 is Table 4's data plotted; regenerate the series.
	for i := 0; i < b.N; i++ {
		experiments.NPBTable4(npb.MiniA, []int{1, 2, 4})
	}
}

// --- ablations ---------------------------------------------------------------

// buildCluster prepares a key-sorted clustered system for the tree
// ablations.
func buildCluster(n int) (*core.System, keys.Domain) {
	sys := ic.Plummer(n, 1.0, 11)
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	return sys, d
}

func benchGravity(b *testing.B, mac grav.MACParams, bucket int) {
	sys, d := buildCluster(20000)
	b.ResetTimer()
	var inter uint64
	for i := 0; i < b.N; i++ {
		tr := tree.Build(sys, d, mac, bucket)
		ctr := tr.Gravity(1e-6)
		inter = ctr.Interactions()
	}
	b.ReportMetric(float64(inter), "interactions/op")
}

func BenchmarkAblation_MACBarnesHut(b *testing.B) {
	benchGravity(b, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: true}, 16)
}

func BenchmarkAblation_MACSalmonWarren(b *testing.B) {
	benchGravity(b, grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}, 16)
}

func BenchmarkAblation_OrderMonopole(b *testing.B) {
	benchGravity(b, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: false}, 16)
}

func BenchmarkAblation_OrderQuadrupole(b *testing.B) {
	benchGravity(b, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: true}, 16)
}

func BenchmarkAblation_GroupSize4(b *testing.B)  { benchGravity(b, grav.DefaultMAC(), 4) }
func BenchmarkAblation_GroupSize16(b *testing.B) { benchGravity(b, grav.DefaultMAC(), 16) }
func BenchmarkAblation_GroupSize64(b *testing.B) { benchGravity(b, grav.DefaultMAC(), 64) }

// --- fused vs batched (interaction-list) force evaluation ----------------
//
// The perf guardrail of the two-phase walk: the list-based path must
// beat the fused walk on a 100k-body clustered problem with
// quadrupoles on, with byte-identical interaction counts. Run both
// with -benchtime=1x for the BENCH_baseline.json trajectory.

func batchedBenchTree(b *testing.B) *tree.Tree {
	sys, d := buildCluster(100000)
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-3, Quad: true}
	return tree.Build(sys, d, mac, 16)
}

func benchBatchedGravity(b *testing.B, fused bool) {
	tr := batchedBenchTree(b)
	cList := tr.Gravity(1e-6)
	cFused := tr.GravityFused(1e-6)
	if cList.PP != cFused.PP || cList.PC != cFused.PC || cList.QuadPC != cFused.QuadPC {
		b.Fatalf("interaction counts diverge: list PP=%d PC=%d, fused PP=%d PC=%d",
			cList.PP, cList.PC, cFused.PP, cFused.PC)
	}
	b.ResetTimer()
	var ctr diag.Counters
	for i := 0; i < b.N; i++ {
		if fused {
			ctr = tr.GravityFused(1e-6)
		} else {
			ctr = tr.Gravity(1e-6)
		}
	}
	b.ReportMetric(float64(ctr.Interactions()), "interactions/op")
}

func BenchmarkAblation_BatchedList(b *testing.B)  { benchBatchedGravity(b, false) }
func BenchmarkAblation_BatchedFused(b *testing.B) { benchBatchedGravity(b, true) }

// Steady-state concurrent evaluation through a persistent ForcePool:
// allocs/op must be 0 (per-worker pooled walkers, lists and SoA
// blocks; pre-allocated wake/done channels).
func BenchmarkAblation_BatchedConcurrentAllocs(b *testing.B) {
	tr := batchedBenchTree(b)
	pool := tree.NewForcePool(0)
	defer pool.Close()
	pool.Gravity(tr, 1e-6) // warm-up to the buffers' high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Gravity(tr, 1e-6)
	}
}

// --- tiled vs reference interaction kernels -------------------------------
//
// The kernel-tiling guardrail: the register-blocked, tile-fused
// kernels (grav.ImplTiled) against the three-sweep reference set
// (grav.ImplRef), on real interaction lists captured from a 100k-body
// clustered walk so tile shapes and list lengths are production ones.
// Both must run allocation-free at steady state.

// evalFixture is one group's captured evaluation input: the target
// block and a deep copy of the interaction list the walk built for it.
type evalFixture struct {
	gpos  []vec.V3
	gmass []float64
	list  grav.InteractionList
}

// captureEvalFixtures walks a 100k-body clustered tree and snapshots
// the interaction lists of up to maxGroups groups spread evenly across
// the Morton order.
func captureEvalFixtures(b *testing.B, maxGroups int) []evalFixture {
	b.Helper()
	sys, d := buildCluster(100000)
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-3, Quad: true}
	tr := tree.Build(sys, d, mac, 16)
	stride := len(tr.Groups) / maxGroups
	if stride < 1 {
		stride = 1
	}
	var w tree.Walker
	var ctr diag.Counters
	var out []evalFixture
	cp := func(s []float64) []float64 { return append([]float64(nil), s...) }
	for gi := 0; gi < len(tr.Groups) && len(out) < maxGroups; gi += stride {
		gk := tr.Groups[gi]
		g := tr.Cell(gk)
		lo, hi := g.First, g.First+g.N
		if m := w.Walk(tr, gk, sys.Pos[lo:hi], &ctr); m != nil {
			b.Fatal("serial walk reported missing cells")
		}
		out = append(out, evalFixture{
			gpos:  append([]vec.V3(nil), sys.Pos[lo:hi]...),
			gmass: cp(sys.Mass[lo:hi]),
			list: grav.InteractionList{
				SX: cp(w.List.SX), SY: cp(w.List.SY), SZ: cp(w.List.SZ), SM: cp(w.List.SM),
				CM: cp(w.List.CM), CX: cp(w.List.CX), CY: cp(w.List.CY), CZ: cp(w.List.CZ),
				QXX: cp(w.List.QXX), QYY: cp(w.List.QYY), QZZ: cp(w.List.QZZ),
				QXY: cp(w.List.QXY), QXZ: cp(w.List.QXZ), QYZ: cp(w.List.QYZ),
				Self: w.List.Self,
			},
		})
	}
	return out
}

func benchEvalPP(b *testing.B, im grav.Impl) {
	fx := captureEvalFixtures(b, 48)
	var tg grav.Targets
	round := func() uint64 {
		var n uint64
		for i := range fx {
			f := &fx[i]
			tg.Load(f.gpos, f.gmass)
			n += im.EvalPP(&tg, &f.list, 1e-6)
			if f.list.Self {
				n += im.EvalSelf(&tg, 1e-6)
			}
		}
		return n
	}
	round() // warm-up: target block reaches its high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	var inter uint64
	for i := 0; i < b.N; i++ {
		inter = round()
	}
	b.ReportMetric(float64(inter), "interactions/op")
}

func BenchmarkAblation_EvalPPTiled(b *testing.B) { benchEvalPP(b, grav.ImplTiled) }
func BenchmarkAblation_EvalPPRef(b *testing.B)  { benchEvalPP(b, grav.ImplRef) }

func benchEvalM2P(b *testing.B, im grav.Impl) {
	fx := captureEvalFixtures(b, 48)
	var tg grav.Targets
	round := func() uint64 {
		var n uint64
		for i := range fx {
			f := &fx[i]
			tg.Load(f.gpos, nil)
			n += im.EvalM2P(&tg, &f.list, true, 1e-6)
		}
		return n
	}
	round()
	b.ReportAllocs()
	b.ResetTimer()
	var inter uint64
	for i := 0; i < b.N; i++ {
		inter = round()
	}
	b.ReportMetric(float64(inter), "interactions/op")
}

func BenchmarkAblation_EvalM2PTiled(b *testing.B) { benchEvalM2P(b, grav.ImplTiled) }
func BenchmarkAblation_EvalM2PRef(b *testing.B)  { benchEvalM2P(b, grav.ImplRef) }

// --- tree-construction pipeline ------------------------------------------
//
// The construction guardrails: the radix sort must beat the
// comparison sort on 100k bodies, and the fan-out build and
// incremental decomposition are tracked against their serial/cold
// ablations. Note the worker-fanned variants can only pull ahead of
// their serial twins when GOMAXPROCS > 1; on a single-CPU host they
// measure the (small) coordination overhead instead.

// sortBenchSystems returns a pristine unsorted keyed system and a
// same-shape scratch the benchmark restores into each iteration.
func sortBenchSystems(n int) (*core.System, *core.System) {
	base := ic.Plummer(n, 1.0, 11)
	d := keys.NewDomain(base.Pos)
	base.AssignKeys(d)
	work := core.New(0)
	work.EnableDynamics()
	for i := 0; i < n; i++ {
		work.AppendFrom(base, i)
	}
	return base, work
}

func restoreSystem(dst, src *core.System) {
	copy(dst.Pos, src.Pos)
	copy(dst.Mass, src.Mass)
	copy(dst.Key, src.Key)
	copy(dst.Work, src.Work)
	copy(dst.ID, src.ID)
	copy(dst.Vel, src.Vel)
	copy(dst.Acc, src.Acc)
	copy(dst.Pot, src.Pot)
}

func benchSort(b *testing.B, std bool) {
	base, work := sortBenchSystems(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		restoreSystem(work, base)
		b.StartTimer()
		if std {
			work.SortByKeyStd()
		} else {
			work.SortByKey()
		}
	}
}

func BenchmarkAblation_SortRadix(b *testing.B) { benchSort(b, false) }
func BenchmarkAblation_SortStd(b *testing.B)   { benchSort(b, true) }

func benchBuild(b *testing.B, workers int) {
	sys, d := buildCluster(100000)
	builder := tree.NewBuilder(workers)
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-3, Quad: true}
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = builder.BuildRange(sys, d, mac, 16, 0, tree.EndOffset).NCells()
	}
	b.ReportMetric(float64(cells), "cells/op")
}

func BenchmarkAblation_BuildSerial(b *testing.B)   { benchBuild(b, 1) }
func BenchmarkAblation_BuildParallel(b *testing.B) { benchBuild(b, 4) }

// benchDecompose runs a 4-rank decomposition trajectory: one cold
// solve, then steady-state steps -- incremental (resort repair plus
// warm bisection) against the cold re-solve.
func benchDecompose(b *testing.B, cold bool) {
	const n, steps = 20000, 4
	global := ic.Plummer(n, 1.0, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Run(4, func(c *msg.Comm) {
			local := core.New(0)
			local.EnableDynamics()
			lo, hi := c.Rank()*n/4, (c.Rank()+1)*n/4
			for j := lo; j < hi; j++ {
				local.AppendFrom(global, j)
			}
			dec := &domain.Decomposer{Cold: cold}
			for s := 0; s < steps; s++ {
				d := domain.GlobalDomain(c, local)
				local = dec.Decompose(c, local, d).Sys
			}
		})
	}
}

func BenchmarkAblation_DecomposeIncremental(b *testing.B) { benchDecompose(b, false) }
func BenchmarkAblation_DecomposeCold(b *testing.B)        { benchDecompose(b, true) }

// benchStep times one global step of the serial engine on the
// clustered stepping IC: a Plummer sphere (the dense core spans
// several rungs) inside a cold-collapse shell (at rest, coarsest
// rungs until infall). Uniform runs one full evaluation per step;
// block runs 2^maxrung sub-step evaluations over shrinking active
// sets. "evalsave" is sink evaluations saved versus sub-stepping
// everything at the finest rung -- the paper-facing win of the
// hierarchy -- and "activefrac" its inverse.
func benchStep(b *testing.B, eta float64) {
	bodies := append(PlummerSphere(12000, 1, 11), ColdSphere(8000, 2, 13)...)
	sim, err := NewSerial(bodies, Defaults())
	if err != nil {
		b.Fatal(err)
	}
	if eta > 0 {
		sim.EnableBlockSteps(eta)
	}
	b.ResetTimer()
	var inter uint64
	for i := 0; i < b.N; i++ {
		inter += sim.Step(1e-3).Interactions
	}
	st := sim.StepperStats()
	b.ReportMetric(float64(inter)/float64(b.N), "interactions/op")
	if st.ActiveSinks > 0 {
		b.ReportMetric(float64(st.ActiveSinks)/float64(st.TotalSinks), "activefrac")
		b.ReportMetric(float64(st.TotalSinks)/float64(st.ActiveSinks), "evalsave")
	}
}

func BenchmarkAblation_StepUniform(b *testing.B) { benchStep(b, 0) }
func BenchmarkAblation_StepBlock(b *testing.B)   { benchStep(b, 0.02) }

// GroupSphere runs once per group per evaluation (it gates every MAC
// test), so its scalar rewrite is tracked alongside the kernels.
func BenchmarkAblation_GroupSphere(b *testing.B) {
	sys, _ := buildCluster(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo+16 <= sys.Len(); lo += 16 {
			tree.GroupSphere(sys.Pos[lo : lo+16])
		}
	}
}

func BenchmarkAblation_HashTable(b *testing.B) {
	t := htab.New[int](1 << 14)
	ks := make([]keys.Key, 1<<14)
	for i := range ks {
		ks[i] = keys.FromCoords(uint32(i*2654435761)&0x1FFFFF, uint32(i*40503)&0x1FFFFF, uint32(i)&0x1FFFFF, keys.MaxLevel)
		t.Insert(ks[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(ks[i&(1<<14-1)])
	}
}

func BenchmarkAblation_HashGoMap(b *testing.B) {
	m := make(map[keys.Key]int, 1<<14)
	ks := make([]keys.Key, 1<<14)
	for i := range ks {
		ks[i] = keys.FromCoords(uint32(i*2654435761)&0x1FFFFF, uint32(i*40503)&0x1FFFFF, uint32(i)&0x1FFFFF, keys.MaxLevel)
		m[ks[i]] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[ks[i&(1<<14-1)]]
	}
}

func BenchmarkAblation_RsqrtKarp(b *testing.B) {
	x := 1.0001
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rsqrt.Rsqrt(x)
		x += 1e-9
	}
	_ = sink
}

func BenchmarkAblation_RsqrtLibm(b *testing.B) {
	x := 1.0001
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += 1 / math.Sqrt(x)
		x += 1e-9
	}
	_ = sink
}

func BenchmarkAblation_CurveMorton(b *testing.B)  { benchCurve(b, false) }
func BenchmarkAblation_CurveHilbert(b *testing.B) { benchCurve(b, true) }

// benchCurve measures the locality of the two space-filling curves:
// the mean spatial jump between consecutive bodies in curve order,
// which is what decomposition surface area (and hence boundary
// communication) follows.
func benchCurve(b *testing.B, hilbert bool) {
	sys := ic.Plummer(20000, 1.0, 13)
	d := keys.NewDomain(sys.Pos)
	var jump float64
	for i := 0; i < b.N; i++ {
		if hilbert {
			sys.AssignHilbertKeys(d)
		} else {
			sys.AssignKeys(d)
		}
		sys.SortByKey()
		jump = 0
		for j := 1; j < sys.Len(); j++ {
			jump += sys.Pos[j].Sub(sys.Pos[j-1]).Norm()
		}
		jump /= float64(sys.Len() - 1)
	}
	b.ReportMetric(jump, "mean_jump")
}

func BenchmarkAblation_ABMBatching(b *testing.B) {
	// Batched requests vs the hypothetical per-request messaging:
	// run a parallel force evaluation, then compare the actual
	// message count (batched) to the request count (what unbatched
	// active messages would have sent).
	bodies := PlummerSphere(4000, 1.0, 17)
	var msgs, requests float64
	for i := 0; i < b.N; i++ {
		res, err := RunParallel(ParallelConfig{Config: Defaults(), Procs: 4}, bodies, nil)
		if err != nil {
			b.Fatal(err)
		}
		msgs = float64(res.MaxMsgs)
		requests = float64(res.RemoteCells)
	}
	if msgs > 0 {
		b.ReportMetric(requests/msgs, "requests_per_message")
	}
}

// Sanity: the headline Gflops machinery is consistent end to end.
func BenchmarkPaperAccounting(b *testing.B) {
	sys, d := buildCluster(10000)
	tr := tree.Build(sys, d, grav.DefaultMAC(), 16)
	var ctr diag.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr = tr.Gravity(1e-6)
	}
	b.ReportMetric(float64(ctr.Flops())/float64(ctr.Interactions()), "flops/interaction")
	_ = vec.V3{}
}

// --- latency hiding ------------------------------------------------------

// benchWalkPipeline measures the distributed walk phase of one full
// force evaluation at np=8 on a 100k Plummer sphere, under injected
// in-flight message latency (deterministic: every send of every config
// draws the same delays from the same seed, so on/off is a fair A/B).
// The reported walk_s/op is the slowest rank's walk-phase wall clock;
// stall_p99_ms the p99 of the per-group deferral stalls. With the
// pipeline on, the rank goroutine walks fresh groups and retries
// just-promoted ones inside the reply collectives' latency windows
// (the Progress hook), so walk_s/op drops while forces stay bitwise
// identical (TestOverlapBitwiseForceEquivalence).
func benchWalkPipeline(b *testing.B, workers, slots, prefetch int) {
	const n, np = 100000, 8
	// The fixture churns ~100 MB of IC + tree heap per iteration; at the
	// default GOGC the collector's single-core pauses land directly on
	// the packed critical path and swamp the on/off delta. Relax it
	// identically for every config so the A/B measures overlap, not
	// allocator noise.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-3, Quad: true}
	var walkSec, p99ms float64
	var inter uint64
	for i := 0; i < b.N; i++ {
		w := msg.NewWorld(np)
		w.SetInjector(&msg.Injector{Seed: 7, LatencyProb: 1, MaxLatency: 40 * time.Millisecond})
		reg := metrics.NewRegistry()
		stalls := reg.Histogram(metrics.StallHistogram)
		var mu sync.Mutex
		walkSec, inter = 0, 0
		w.Run(func(c *msg.Comm) {
			global := ic.Plummer(n, 1.0, 11)
			local := core.New(0)
			local.EnableDynamics()
			lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
			for j := lo; j < hi; j++ {
				local.AppendFrom(global, j)
			}
			e := parallel.New(c, local, parallel.Config{
				MAC: mac, Eps2: 1e-6, Bucket: 16,
				EvalWorkers: workers, EvalSlots: slots, PrefetchDepth: prefetch,
			})
			defer e.Close()
			e.Stalls = stalls
			e.ComputeForces()
			mu.Lock()
			defer mu.Unlock()
			if s := e.Timer.Get("walk").Seconds(); s > walkSec {
				walkSec = s
			}
			inter += e.Counters.Interactions()
		})
		p99ms = float64(stalls.Quantile(0.99)) / 1e6
	}
	b.ReportMetric(walkSec, "walk_s/op")
	b.ReportMetric(p99ms, "stall_p99_ms")
	b.ReportMetric(float64(inter), "interactions/op")
}

func BenchmarkAblation_WalkOverlapOff(b *testing.B) { benchWalkPipeline(b, 0, 0, 0) }
func BenchmarkAblation_WalkOverlapOn(b *testing.B)  { benchWalkPipeline(b, 1, 0, 0) }
func BenchmarkAblation_PrefetchD0(b *testing.B)     { benchWalkPipeline(b, 0, 0, 0) }
func BenchmarkAblation_PrefetchD1(b *testing.B)     { benchWalkPipeline(b, 0, 0, 1) }
