// Package hot is the public face of the Hashed Oct-Tree library: a
// reproduction of the treecode of Warren & Salmon et al. ("Pentium
// Pro Inside", SC'97). It solves gravitational (and, through the
// subpackages, vortex-dynamical and SPH) N-body problems in
// O(N log N) time, either serially or on a simulated message-passing
// machine whose processors are goroutines.
//
// Quick start:
//
//	bodies := hot.PlummerSphere(10000, 1)
//	sim, _ := hot.NewSerial(bodies, hot.Defaults())
//	for i := 0; i < 100; i++ {
//	    info := sim.Step(1e-3)
//	    fmt.Println(info.Gflops(), "Gflops-equivalent work")
//	}
//
// The parallel entry point runs the full distributed algorithm --
// work-weighted Morton decomposition, branch exchange, batched
// remote-cell requests -- on any number of simulated processors:
//
//	result := hot.RunParallel(hot.ParallelConfig{
//	    Procs: 16, Steps: 10, Dt: 1e-3, Config: hot.Defaults(),
//	}, bodies, nil)
package hot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/direct"
	"repro/internal/grav"
	"repro/internal/integrate"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Body is one particle.
type Body struct {
	Pos, Vel [3]float64
	Mass     float64
}

// MACKind selects the multipole acceptance criterion.
type MACKind int

const (
	// BarnesHut opens cells by the size/distance ratio Theta.
	BarnesHut MACKind = iota
	// SalmonWarren opens cells by the analytic worst-case force
	// error bound AccelTol (the paper's production criterion).
	SalmonWarren
)

// Config controls force accuracy and tree shape.
type Config struct {
	MAC MACKind
	// Theta is the Barnes-Hut opening angle (used when MAC ==
	// BarnesHut); typical 0.5-1.0.
	Theta float64
	// AccelTol is the Salmon-Warren absolute acceleration error
	// bound per accepted cell (used when MAC == SalmonWarren).
	AccelTol float64
	// Quadrupole enables quadrupole-order expansions (the paper's
	// setting); monopole-only when false.
	Quadrupole bool
	// Eps is the Plummer softening length.
	Eps float64
	// Bucket is the tree leaf capacity (0 = default).
	Bucket int
}

// Defaults returns the paper-like configuration for unit-scale
// problems (total mass ~1, size ~1).
func Defaults() Config {
	return Config{
		MAC:        SalmonWarren,
		Theta:      0.7,
		AccelTol:   1e-4,
		Quadrupole: true,
		Eps:        1e-3,
		Bucket:     tree.DefaultBucketSize,
	}
}

func (c Config) macParams() grav.MACParams {
	p := grav.MACParams{Theta: c.Theta, AccelTol: c.AccelTol, Quad: c.Quadrupole}
	switch c.MAC {
	case BarnesHut:
		p.Kind = grav.MACBarnesHut
	case SalmonWarren:
		p.Kind = grav.MACSalmonWarren
	default:
		p.Kind = grav.MACSalmonWarren
	}
	return p
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MAC == BarnesHut && (c.Theta <= 0 || c.Theta > 2) {
		return fmt.Errorf("hot: Theta %v out of range (0, 2]", c.Theta)
	}
	if c.MAC == SalmonWarren && c.AccelTol <= 0 {
		return fmt.Errorf("hot: AccelTol must be positive, got %v", c.AccelTol)
	}
	if c.Eps < 0 {
		return fmt.Errorf("hot: negative softening %v", c.Eps)
	}
	return nil
}

// StepInfo reports one force evaluation / timestep.
type StepInfo struct {
	// Interactions is the number of body-body plus body-cell
	// interactions, the paper's fundamental work metric.
	Interactions uint64
	// Flops charges 38 operations per interaction plus quadrupole
	// surcharges, exactly as the paper counts.
	Flops uint64
	// Cells is the number of tree cells built.
	Cells uint64
	// Kinetic and Potential are the system energies after the step
	// (Potential from the softened tree potential).
	Kinetic, Potential float64
}

// toSystem converts the public body slice.
func toSystem(bodies []Body) *core.System {
	sys := core.New(len(bodies))
	sys.EnableDynamics()
	for i, b := range bodies {
		sys.Pos[i] = vec.V3{X: b.Pos[0], Y: b.Pos[1], Z: b.Pos[2]}
		sys.Vel[i] = vec.V3{X: b.Vel[0], Y: b.Vel[1], Z: b.Vel[2]}
		sys.Mass[i] = b.Mass
	}
	return sys
}

func fromSystem(sys *core.System) []Body {
	out := make([]Body, sys.Len())
	for i := range out {
		out[sys.ID[i]] = Body{
			Pos:  [3]float64{sys.Pos[i].X, sys.Pos[i].Y, sys.Pos[i].Z},
			Vel:  [3]float64{sys.Vel[i].X, sys.Vel[i].Y, sys.Vel[i].Z},
			Mass: sys.Mass[i],
		}
	}
	return out
}

// Serial is a single-process simulation with a stepwise API.
type Serial struct {
	cfg Config
	sys *core.System
	ctr diag.Counters
	acc diag.Counters
	st  integrate.Stepper
}

// NewSerial builds a serial simulation and computes initial forces.
func NewSerial(bodies []Body, cfg Config) (*Serial, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("hot: no bodies")
	}
	s := &Serial{cfg: cfg, sys: toSystem(bodies)}
	s.st.B = &integrate.FuncBodies{
		System: s.sys,
		Force:  func(_ *core.System, minRung int) { s.forcesActive(minRung) },
	}
	s.forces()
	return s, nil
}

// EnableBlockSteps switches Step to hierarchical block timesteps:
// each body sub-steps the global dt in 2^r pieces with r chosen from
// dt_i = eta*sqrt(Eps/|a_i|), and only the tree-leaf groups holding an
// active body are re-evaluated at each sub-step. Typical eta is
// 0.01-0.05 for unit-scale problems. Call before the first Step (or
// at any step boundary).
func (s *Serial) EnableBlockSteps(eta float64) {
	s.st.Scheme = integrate.Block
	s.st.Eta = eta
	s.st.Eps = s.cfg.Eps
}

// StepperStats returns the accumulated block-scheduler accounting
// (sub-steps, full/partial evaluations, active-sink fractions).
func (s *Serial) StepperStats() integrate.Stats { return s.st.Stats }

func (s *Serial) forces() {
	s.acc = diag.Counters{}
	s.forcesActive(0)
	s.ctr = s.acc
}

// forcesActive rebuilds the tree from the current (drifted) positions
// and evaluates forces for the groups active at minRung (everything
// when minRung <= 0), accumulating this step's counters.
func (s *Serial) forcesActive(minRung int) {
	d := keys.NewDomain(s.sys.Pos)
	s.sys.AssignKeys(d)
	s.sys.SortByKey()
	tr := tree.Build(s.sys, d, s.cfg.macParams(), s.cfg.Bucket)
	ctr := tr.GravityActive(s.cfg.Eps*s.cfg.Eps, minRung)
	ctr.CellsBuilt = uint64(tr.NCells())
	s.acc.Add(ctr)
}

// Step advances one global step through the integrate core: the
// kick-drift-kick leapfrog by default, hierarchical sub-steps after
// EnableBlockSteps. StepInfo aggregates every (partial) force
// evaluation the step ran.
func (s *Serial) Step(dt float64) StepInfo {
	s.acc = diag.Counters{}
	s.st.Step(dt)
	s.ctr = s.acc
	return s.info()
}

func (s *Serial) info() StepInfo {
	kin, pot, _ := integrate.Energy(s.sys)
	return StepInfo{
		Interactions: s.ctr.Interactions(),
		Flops:        s.ctr.Flops(),
		Cells:        s.ctr.CellsBuilt,
		Kinetic:      kin,
		Potential:    pot,
	}
}

// Info returns the statistics of the last force evaluation.
func (s *Serial) Info() StepInfo { return s.info() }

// Bodies returns the current state, indexed as originally passed.
func (s *Serial) Bodies() []Body { return fromSystem(s.sys) }

// N returns the body count.
func (s *Serial) N() int { return s.sys.Len() }

// ParallelConfig configures a simulated-parallel run.
type ParallelConfig struct {
	Config
	// Procs is the number of simulated processors (goroutines).
	Procs int
	// Steps and Dt drive the leapfrog integration; Steps = 0 computes
	// forces once without advancing.
	Steps int
	Dt    float64
}

// ParallelResult summarizes a parallel run.
type ParallelResult struct {
	Bodies []Body
	// Counters aggregates interaction counts over all ranks and steps.
	Interactions uint64
	Flops        uint64
	// MaxMsgs/MaxBytes are the bottleneck rank's total traffic.
	MaxMsgs, MaxBytes uint64
	// Rounds is the largest number of request/reply rounds any
	// evaluation needed; RemoteCells the total imported cells.
	Rounds      int
	RemoteCells int
	// Kinetic/Potential are the final energies.
	Kinetic, Potential float64
}

// RunParallel executes the full distributed treecode on cfg.Procs
// simulated processors. onStep, when non-nil, receives per-step info
// (called on rank 0's data, between steps).
func RunParallel(cfg ParallelConfig, bodies []Body, onStep func(step int, info StepInfo)) (ParallelResult, error) {
	if err := cfg.Validate(); err != nil {
		return ParallelResult{}, err
	}
	if cfg.Procs < 1 {
		return ParallelResult{}, fmt.Errorf("hot: Procs must be >= 1")
	}
	if len(bodies) == 0 {
		return ParallelResult{}, fmt.Errorf("hot: no bodies")
	}
	global := toSystem(bodies)
	var res ParallelResult
	perRank := make([]*parallel.Engine, cfg.Procs)
	w := msg.Run(cfg.Procs, func(c *msg.Comm) {
		n := global.Len()
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:    cfg.macParams(),
			Bucket: cfg.Bucket,
			Eps2:   cfg.Eps * cfg.Eps,
		})
		e.ComputeForces()
		for s := 0; s < cfg.Steps; s++ {
			ctr := e.Step(cfg.Dt)
			if onStep != nil && c.Rank() == 0 {
				onStep(s, StepInfo{
					Interactions: ctr.Interactions(),
					Flops:        ctr.Flops(),
					Cells:        ctr.CellsBuilt,
				})
			}
		}
		kin, pot := e.Energy()
		if c.Rank() == 0 {
			res.Kinetic, res.Potential = kin, pot
		}
		perRank[c.Rank()] = e
	})

	// Collect bodies and counters.
	all := core.New(0)
	all.EnableDynamics()
	for _, e := range perRank {
		for i := 0; i < e.Sys.Len(); i++ {
			all.AppendFrom(e.Sys, i)
		}
		res.Interactions += e.Counters.Interactions()
		res.Flops += e.Counters.Flops()
		res.RemoteCells += e.RemoteCells
		if e.Rounds > res.Rounds {
			res.Rounds = e.Rounds
		}
	}
	res.Bodies = fromSystemByID(all, len(bodies))
	m := w.MaxRankTraffic()
	res.MaxMsgs, res.MaxBytes = m.Msgs, m.Bytes
	return res, nil
}

// fromSystemByID reassembles bodies in original order from a
// concatenation of rank-local systems.
func fromSystemByID(sys *core.System, n int) []Body {
	out := make([]Body, n)
	for i := 0; i < sys.Len(); i++ {
		out[sys.ID[i]] = Body{
			Pos:  [3]float64{sys.Pos[i].X, sys.Pos[i].Y, sys.Pos[i].Z},
			Vel:  [3]float64{sys.Vel[i].X, sys.Vel[i].Y, sys.Vel[i].Z},
			Mass: sys.Mass[i],
		}
	}
	return out
}

// DirectForces computes exact softened forces (the O(N^2) reference)
// and returns accelerations indexed like bodies. For benchmarking and
// accuracy studies.
func DirectForces(bodies []Body, eps float64) ([][3]float64, StepInfo) {
	sys := toSystem(bodies)
	ctr := direct.Serial(sys.Pos, sys.Mass, sys.Acc, sys.Pot, eps*eps)
	acc := make([][3]float64, len(bodies))
	for i := range acc {
		acc[i] = [3]float64{sys.Acc[i].X, sys.Acc[i].Y, sys.Acc[i].Z}
	}
	return acc, StepInfo{Interactions: ctr.Interactions(), Flops: ctr.Flops()}
}
