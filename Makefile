# Convenience entry points; scripts/check.sh is the source of truth
# for what "green" means.

check:
	sh scripts/check.sh

# Regenerate the committed performance baseline (ablation benches at
# one iteration each, parsed to JSON by cmd/benchdump).
bench-baseline:
	go test -run='^$$' -bench=Ablation -benchtime=1x . | go run ./cmd/benchdump -o BENCH_baseline.json

.PHONY: check bench-baseline
