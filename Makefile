# Convenience entry points; scripts/check.sh is the source of truth
# for what "green" means.

check:
	sh scripts/check.sh

# Regenerate the committed performance baseline (ablation benches at
# one iteration each, parsed to JSON by cmd/benchdump).
bench-baseline:
	go test -run='^$$' -bench=Ablation -benchtime=1x . | go run ./cmd/benchdump -o BENCH_baseline.json

.PHONY: check bench-baseline

# Run just the benchmark guardrail: ablation benches at one iteration,
# diffed against the committed baseline (fails on >15% regression).
benchcmp:
	go test -run='^$$' -bench=Ablation_Batched -benchtime=1x . | go run ./cmd/benchdump -compare BENCH_baseline.json -match Ablation_Batched -tol 0.15

.PHONY: benchcmp
