# Convenience entry points; scripts/check.sh is the source of truth
# for what "green" means.

check:
	sh scripts/check.sh

# Chaos soak: treebench under deterministic fault injection across
# np in {2,8}; every run must end clean (0) or in a structured abort
# (3) -- a hang or raw panic fails the soak.
chaos:
	sh scripts/chaos.sh full

.PHONY: chaos

# Regenerate the committed performance baseline (ablation benches at
# one iteration each, parsed to JSON by cmd/benchdump). A short
# treebench run supplies the RunReport whose flop-rate context is
# embedded alongside the numbers ("sim" field), so the baseline records
# what the machine achieved end to end when it was cut.
# The construction-pipeline benches (Sort/Build/Decompose) finish in
# tens of milliseconds, so they run 5 iterations for a stable number;
# the second-scale benches stay at one; the sub-millisecond
# interaction-kernel benches (Eval) run 100 for the same reason.
bench-baseline:
	go run ./cmd/treebench -n 50000 -procs 4 -steps 1 -metrics /tmp/treebench_report.json >/dev/null
	{ go test -run='^$$' -bench='Ablation_(MAC|Order|Group|Batched|Hash|Rsqrt|Curve|ABM|Step|WalkOverlap|Prefetch)' -benchtime=1x . ; \
	  go test -run='^$$' -bench='Ablation_(Sort|Build|Decompose)' -benchtime=5x . ; \
	  go test -run='^$$' -bench='Ablation_Eval' -benchtime=100x . ; } \
	  | go run ./cmd/benchdump -runreport /tmp/treebench_report.json -o BENCH_baseline.json

# Opt-in end-to-end guardrail on the achieved flop rate: cut a sim
# baseline once on a quiet machine, then simcmp fails (exit 1) if the
# current run's flop rate is >15% below it. Too wall-clock-noisy for
# check.sh; useful before/after perf work.
simbaseline:
	go run ./cmd/treebench -n 50000 -procs 4 -steps 1 -metrics SIM_baseline.json >/dev/null

simcmp:
	go run ./cmd/treebench -n 50000 -procs 4 -steps 1 -metrics /tmp/sim_current.json >/dev/null
	go run ./cmd/perfreport -diff SIM_baseline.json /tmp/sim_current.json

.PHONY: check bench-baseline simbaseline simcmp

# Run just the benchmark guardrail: ablation benches at one iteration,
# diffed against the committed baseline (fails on >15% regression).
# The interaction-kernel benches get a looser timing tolerance (see
# scripts/check.sh); their strict guards are allocs/op and the BCE
# golden.
benchcmp:
	{ go test -run='^$$' -bench=Ablation_Batched -benchtime=1x . ; \
	  go test -run='^$$' -bench='Ablation_(Sort|Build|Decompose)' -benchtime=5x . ; } \
	  | go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(Batched|Sort|Build|Decompose)' -tol 0.15
	{ go test -run='^$$' -bench='Ablation_Eval' -benchtime=100x . ; \
	  go test -run='^$$' -bench='Ablation_Step' -benchtime=1x . ; } \
	  | go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(Eval|Step)' -tol 0.5

.PHONY: benchcmp
